"""Bench E1 — Equations (1)/(2): balls-in-bins model vs Monte Carlo."""

from repro.experiments import eq1

from benchmarks.conftest import run_once


def test_eq1(benchmark, record_result):
    result = run_once(
        benchmark,
        eq1.run,
        dimensions=(8, 10, 12),
        set_sizes=(1, 2, 3, 5, 7, 10, 15),
        trials=20_000,
        seed=0,
    )
    record_result(result)
    for row in result.rows:
        assert row["pmf_max_abs_diff"] < 0.02
        assert abs(row["expected_one_eq2"] - row["expected_one_mc"]) < 0.1
