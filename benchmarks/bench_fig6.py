"""Bench F6 — Figure 6: ranked load distribution.

Full paper scale: 131,180 objects, hypercube r = 6..16, with the DHT-r
and DII-r reference curves.  Shape assertions: balance is best near
r = 10 and degrades in both directions; DII is far worse than the
hypercube at every shared r; DHT is the lower envelope.
"""

from repro.experiments import fig6
from repro.workload.corpus import PAPER_CORPUS_SIZE

from benchmarks.conftest import run_once


def _ginis(result) -> dict[str, float]:
    return {
        note.split("]")[0].split("[")[1]: float(note.split("= ")[1])
        for note in result.notes
    }


def test_fig6(benchmark, record_result):
    result = run_once(
        benchmark,
        fig6.run,
        num_objects=PAPER_CORPUS_SIZE,
        seed=0,
        dimensions=(6, 8, 10, 12, 14, 16),
        dii_dimensions=(10, 12, 14),
    )
    record_result(result)
    ginis = _ginis(result)
    assert ginis["hypercube-10"] < ginis["hypercube-6"]
    assert ginis["hypercube-10"] < ginis["hypercube-16"]
    for r in (10, 12, 14):
        assert ginis[f"DII-{r}"] > ginis[f"hypercube-{r}"]
        assert ginis[f"DHT-{r}"] < ginis[f"hypercube-{r}"]
