"""Tests for the Pastry DHT."""

import pytest

from repro.dht.pastry import PastryNetwork


class TestConstruction:
    def test_build(self):
        overlay = PastryNetwork.build(bits=16, num_nodes=30, seed=1)
        assert len(overlay.nodes) == 30

    def test_bits_must_divide(self):
        with pytest.raises(ValueError):
            PastryNetwork.build(bits=10, num_nodes=4, digit_bits=4)

    def test_leaf_sets_are_ring_neighbours(self):
        overlay = PastryNetwork.build(bits=16, num_nodes=24, seed=2)
        ordered = overlay.addresses()
        for rank, address in enumerate(ordered):
            node = overlay.nodes[address]
            assert node.larger_leaves[0] == ordered[(rank + 1) % len(ordered)]
            assert node.smaller_leaves[0] == ordered[(rank - 1) % len(ordered)]

    def test_routing_table_prefix_property(self):
        overlay = PastryNetwork.build(bits=16, num_nodes=40, seed=3)
        for node in overlay.nodes.values():
            for row in range(node.num_digits):
                for column, entry in enumerate(node.routing_table[row]):
                    if entry is None:
                        continue
                    assert node.shared_prefix_length(entry) == row
                    assert node.digit(entry, row) == column


class TestDigits:
    def test_digit_extraction(self):
        overlay = PastryNetwork.build(bits=16, num_nodes=4, seed=4)
        node = next(iter(overlay.nodes.values()))
        value = 0xABCD
        assert [node.digit(value, i) for i in range(4)] == [0xA, 0xB, 0xC, 0xD]

    def test_shared_prefix_length(self):
        overlay = PastryNetwork.build(bits=16, num_nodes=4, seed=5)
        node = next(iter(overlay.nodes.values()))
        assert node.shared_prefix_length(node.address) == node.num_digits


class TestLookup:
    def test_matches_local_owner(self):
        overlay = PastryNetwork.build(bits=16, num_nodes=40, seed=6)
        origin = overlay.any_address()
        for key in range(0, 65536, 1499):
            assert overlay.lookup(key, origin=origin).owner == overlay.local_owner(key)

    def test_from_every_origin(self):
        overlay = PastryNetwork.build(bits=16, num_nodes=16, seed=7)
        key = 31337
        expected = overlay.local_owner(key)
        for origin in overlay.addresses():
            assert overlay.lookup(key, origin=origin).owner == expected

    def test_hops_logarithmic(self):
        overlay = PastryNetwork.build(bits=16, num_nodes=64, seed=8)
        origin = overlay.any_address()
        hops = [
            overlay.lookup(key, origin=origin).hops for key in range(0, 65536, 2221)
        ]
        assert max(hops) <= overlay.nodes[origin].num_digits + 2

    def test_survives_failures(self):
        overlay = PastryNetwork.build(bits=16, num_nodes=40, seed=9)
        addresses = overlay.addresses()
        for dead in addresses[5:20:3]:
            overlay.network.fail(dead)
        origin = addresses[0]
        for key in range(0, 65536, 2999):
            owner = overlay.lookup(key, origin=origin).owner
            assert overlay.network.is_alive(owner)

    def test_single_node(self):
        overlay = PastryNetwork.build(bits=16, num_nodes=1, seed=10)
        (address,) = overlay.addresses()
        assert overlay.lookup(7, origin=address).owner == address


class TestDolrOperations:
    def test_insert_read_delete(self):
        overlay = PastryNetwork.build(bits=16, num_nodes=12, seed=11)
        holder = overlay.any_address()
        assert overlay.insert("obj", holder) is True
        assert overlay.read("obj") == [holder]
        assert overlay.delete("obj", holder) is True

    def test_membership(self):
        overlay = PastryNetwork.build(bits=16, num_nodes=8, seed=12)
        newcomer = next(a for a in range(65536) if a not in overlay.nodes)
        overlay.join(newcomer)
        assert overlay.lookup(newcomer, origin=overlay.addresses()[0]).owner == newcomer
        overlay.leave(newcomer)
        assert newcomer not in overlay.nodes
        with pytest.raises(ValueError):
            overlay.leave(newcomer)

    def test_join_duplicate_rejected(self):
        overlay = PastryNetwork.build(bits=16, num_nodes=8, seed=13)
        with pytest.raises(ValueError):
            overlay.join(overlay.any_address())


class TestKeywordLayerOnPastry:
    def test_service_over_pastry(self):
        from repro.core.config import ServiceConfig
        from repro.core.service import KeywordSearchService

        service = KeywordSearchService.create(
            ServiceConfig(dimension=6, num_dht_nodes=20, dht="pastry", seed=14)
        )
        service.publish("a", {"x", "y"})
        service.publish("b", {"x", "z"})
        assert set(service.superset_search({"x"}).object_ids) == {"a", "b"}
        assert service.pin_search({"x", "y"}).object_ids == ("a",)
