"""Integration tests: the full stack across layers, DHTs and workloads."""

import pytest

from repro.core.config import ServiceConfig
from repro.core.index import HypercubeIndex
from repro.core.search import SuperSetSearch, TraversalOrder
from repro.core.service import KeywordSearchService
from repro.dht.chord import ChordNetwork
from repro.dht.kademlia import KademliaNetwork
from repro.hypercube.hypercube import Hypercube
from repro.workload.corpus import SyntheticCorpus
from repro.workload.queries import QueryLogGenerator


class TestOracleEquivalence:
    """Protocol results must equal a linear corpus scan, end to end."""

    @pytest.fixture(scope="class")
    def stack(self, small_corpus):
        index_chord = HypercubeIndex(
            Hypercube(7), ChordNetwork.build(bits=20, num_nodes=32, seed=81)
        )
        index_kad = HypercubeIndex(
            Hypercube(7), KademliaNetwork.build(bits=20, num_nodes=32, seed=81)
        )
        items = [(r.object_id, r.keywords) for r in small_corpus]
        index_chord.bulk_load(items)
        index_kad.bulk_load(items)
        return small_corpus, index_chord, index_kad

    def test_superset_matches_scan_on_chord(self, stack):
        corpus, index, _ = stack
        searcher = SuperSetSearch(index)
        generator = QueryLogGenerator(corpus, pool_size=60, seed=82)
        for query in generator.pool[:25]:
            expected = set(corpus.matching(query))
            assert set(searcher.run(query).object_ids) == expected

    def test_chord_and_kademlia_agree(self, stack):
        corpus, chord_index, kad_index = stack
        generator = QueryLogGenerator(corpus, pool_size=60, seed=83)
        chord_search = SuperSetSearch(chord_index)
        kad_search = SuperSetSearch(kad_index)
        for query in generator.pool[:15]:
            chord_result = chord_search.run(query)
            kad_result = kad_search.run(query)
            # Identical object sets AND identical logical visit counts:
            # the scheme is DHT-agnostic above the mapping layer.
            assert set(chord_result.object_ids) == set(kad_result.object_ids)
            assert chord_result.logical_nodes_contacted == kad_result.logical_nodes_contacted

    def test_pin_search_matches_exact_sets(self, stack):
        corpus, index, _ = stack
        for record in corpus.records[:30]:
            result = index.pin_search(record.keywords)
            expected = {
                r.object_id for r in corpus if r.keywords == record.keywords
            }
            assert set(result.object_ids) == expected

    def test_threshold_prefix_property(self, stack):
        corpus, index, _ = stack
        searcher = SuperSetSearch(index)
        generator = QueryLogGenerator(corpus, pool_size=60, seed=84)
        for query in generator.pool[:10]:
            full = searcher.run(query).object_ids
            if len(full) >= 3:
                capped = searcher.run(query, threshold=3).object_ids
                assert list(capped) == list(full[:3])


class TestServiceLifecycle:
    def test_publish_search_unpublish_cycle(self):
        service = KeywordSearchService.create(ServiceConfig(dimension=7, num_dht_nodes=24, seed=85))
        corpus = SyntheticCorpus.generate(num_objects=120, seed=85)
        peers = service.index.dolr.addresses()
        for position, record in enumerate(corpus):
            service.publish(
                record.object_id, record.keywords, holder=peers[position % len(peers)]
            )
        # Search agrees with the oracle.
        sample = corpus.records[17]
        query = frozenset(list(sample.keywords)[:1])
        found = set(service.superset_search(query).object_ids)
        assert found == set(corpus.matching(query))
        # Remove everything again; index must end empty.
        for position, record in enumerate(corpus):
            service.unpublish(record.object_id, holder=peers[position % len(peers)])
        assert service.index.total_indexed() == 0
        assert service.superset_search(query).objects == ()

    def test_search_under_churn(self):
        # Nodes joining does not corrupt existing index placement as
        # long as placements are re-resolved (no placement cache here).
        ring = ChordNetwork.build(bits=16, num_nodes=16, seed=86)
        index = HypercubeIndex(Hypercube(6), ring)
        holder = ring.any_address()
        corpus = SyntheticCorpus.generate(num_objects=60, seed=86)
        for record in corpus:
            index.insert(record.object_id, record.keywords, holder)

        # Join new nodes; they take over key ranges *without* data
        # migration (out of scope, as in the paper), so re-check only
        # keys whose owner did not change.
        before = index.mapping.placement()
        for address in (7, 70, 700, 7000):
            if address not in ring.nodes:
                ring.join(address, holder)
                ring.stabilize_all(rounds=2)
        after = index.mapping.placement()
        stable_logicals = [n for n in before if before[n] == after[n]]
        assert stable_logicals  # most placements survive 4 joins
        searcher = SuperSetSearch(index)
        sample = corpus.records[0]
        query = frozenset(list(sample.keywords)[:1])
        found = set(searcher.run(query).object_ids)
        expected = {
            record.object_id
            for record in corpus
            if query <= record.keywords
            and after[index.mapper.node_for(record.keywords)]
            == before[index.mapper.node_for(record.keywords)]
        }
        assert expected <= found | expected  # sanity
        assert expected <= found


class TestCrossLayerAccounting:
    def test_insert_cost_constant_in_keyword_count(self):
        # Section 3.5: the hypercube index pays ONE index message per
        # insert regardless of k — unlike DII's k messages.
        ring = ChordNetwork.build(bits=16, num_nodes=24, seed=87)
        index = HypercubeIndex(Hypercube(8), ring)
        holder = ring.any_address()
        costs = []
        for k in (2, 5, 10):
            keywords = {f"kw-{k}-{i}" for i in range(k)}
            with ring.network.trace() as trace:
                index.insert(f"obj-{k}", keywords, holder)
            costs.append(trace.count_kind("hindex.put"))
        # One index update per insert regardless of k: at most one
        # request/reply pair (zero when the reference owner happens to
        # also host the index node — local delivery is free).
        assert all(cost <= 2 for cost in costs)
        assert costs[0] == costs[1] == costs[2] or max(costs) <= 2

    def test_search_messages_scale_with_subcube_not_corpus(self):
        ring = ChordNetwork.build(bits=16, num_nodes=24, seed=88)
        index = HypercubeIndex(Hypercube(8), ring)
        small = SyntheticCorpus.generate(num_objects=50, seed=88)
        index.bulk_load((r.object_id, r.keywords) for r in small)
        searcher = SuperSetSearch(index)
        generator = QueryLogGenerator(small, pool_size=30, seed=88)
        query = generator.popular_sets(2, 1)[0]
        sparse_visits = len(searcher.run(query).visits)

        dense_ring = ChordNetwork.build(bits=16, num_nodes=24, seed=88)
        dense_index = HypercubeIndex(Hypercube(8), dense_ring)
        big = SyntheticCorpus.generate(num_objects=500, seed=88)
        dense_index.bulk_load((r.object_id, r.keywords) for r in big)
        dense_visits = len(SuperSetSearch(dense_index).run(query).visits)

        # Same subcube → same visit count, independent of corpus size.
        assert sparse_visits == dense_visits

    def test_parallel_latency_advantage(self):
        # With constant link latency, the level-parallel walk finishes in
        # far fewer rounds than the sequential walk's per-node steps.
        ring = ChordNetwork.build(bits=16, num_nodes=24, seed=89)
        index = HypercubeIndex(Hypercube(8), ring)
        corpus = SyntheticCorpus.generate(num_objects=100, seed=89)
        index.bulk_load((r.object_id, r.keywords) for r in corpus)
        searcher = SuperSetSearch(index)
        generator = QueryLogGenerator(corpus, pool_size=30, seed=89)
        query = generator.popular_sets(1, 1)[0]
        sequential = searcher.run(query, order=TraversalOrder.TOP_DOWN)
        parallel = searcher.run(query, order=TraversalOrder.PARALLEL)
        assert parallel.rounds < sequential.rounds
        assert set(parallel.object_ids) == set(sequential.object_ids)
