"""Unit tests for repro.util.zipf and repro.util.rng."""

import random

import pytest

from repro.util.rng import make_rng, spawn_rng
from repro.util.zipf import (
    ZipfDistribution,
    calibrate_exponent_for_head_share,
    empirical_head_share,
)


class TestZipfDistribution:
    def test_pmf_sums_to_one(self):
        z = ZipfDistribution(50, 1.2)
        assert abs(sum(z.pmf(k) for k in range(1, 51)) - 1.0) < 1e-12

    def test_monotone_decreasing(self):
        z = ZipfDistribution(100, 0.9)
        pmf = [z.pmf(k) for k in range(1, 101)]
        assert all(a >= b for a, b in zip(pmf, pmf[1:]))

    def test_uniform_when_s_zero(self):
        z = ZipfDistribution(10, 0.0)
        assert abs(z.pmf(1) - 0.1) < 1e-12
        assert abs(z.pmf(10) - 0.1) < 1e-12

    def test_cdf_endpoints(self):
        z = ZipfDistribution(30, 1.0)
        assert z.cdf(30) == 1.0
        assert z.cdf(1) == z.pmf(1)

    def test_mandelbrot_offset_flattens_head(self):
        plain = ZipfDistribution(1000, 1.0)
        flattened = ZipfDistribution(1000, 1.0, q=50)
        assert flattened.pmf(1) < plain.pmf(1)
        assert flattened.head_share(10) < plain.head_share(10)

    def test_sampling_range(self):
        z = ZipfDistribution(20, 1.0)
        rng = random.Random(0)
        for _ in range(200):
            assert 1 <= z.sample(rng) <= 20

    def test_sampling_skew(self):
        z = ZipfDistribution(100, 1.5)
        samples = z.sample_many(5000, random.Random(1))
        ones = samples.count(1)
        assert ones / 5000 == pytest.approx(z.pmf(1), abs=0.03)

    def test_sample_many_deterministic(self):
        z = ZipfDistribution(50, 1.0)
        assert z.sample_many(100, 7) == z.sample_many(100, 7)

    def test_expected_counts(self):
        z = ZipfDistribution(5, 1.0)
        counts = z.expected_counts(1000)
        assert len(counts) == 5
        assert abs(sum(counts) - 1000) < 1e-9

    def test_head_share_monotone_in_top(self):
        z = ZipfDistribution(100, 1.0)
        assert z.head_share(1) < z.head_share(10) < z.head_share(100) == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfDistribution(0, 1.0)
        with pytest.raises(ValueError):
            ZipfDistribution(10, -0.5)
        with pytest.raises(ValueError):
            ZipfDistribution(10, 1.0, q=-1)
        z = ZipfDistribution(10, 1.0)
        with pytest.raises(ValueError):
            z.pmf(0)
        with pytest.raises(ValueError):
            z.pmf(11)


class TestCalibration:
    def test_hits_target(self):
        s = calibrate_exponent_for_head_share(n=1000, top=10, target_share=0.6)
        assert ZipfDistribution(1000, s).head_share(10) == pytest.approx(0.6, abs=1e-3)

    def test_higher_target_needs_higher_exponent(self):
        s_low = calibrate_exponent_for_head_share(n=500, top=10, target_share=0.3)
        s_high = calibrate_exponent_for_head_share(n=500, top=10, target_share=0.8)
        assert s_high > s_low

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            calibrate_exponent_for_head_share(n=100, top=10, target_share=1.5)

    def test_invalid_top(self):
        with pytest.raises(ValueError):
            calibrate_exponent_for_head_share(n=100, top=100, target_share=0.5)

    def test_empirical_head_share(self):
        assert empirical_head_share([1, 1, 1, 2], top=1) == 0.75
        assert empirical_head_share([], top=3) == 0.0


class TestRng:
    def test_make_rng_from_seed(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_make_rng_passthrough(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng

    def test_spawn_labels_independent(self):
        parent = random.Random(9)
        a = spawn_rng(parent, "a")
        parent2 = random.Random(9)
        b = spawn_rng(parent2, "b")
        assert a.random() != b.random()

    def test_spawn_reproducible(self):
        a = spawn_rng(random.Random(3), "x").random()
        b = spawn_rng(random.Random(3), "x").random()
        assert a == b
