"""Unit tests for spanning binomial trees (Definition 3.2, Lemma 3.2)."""

import math

import pytest

from repro.hypercube.hypercube import Hypercube
from repro.hypercube.sbt import SpanningBinomialTree


def build_figure4_tree() -> SpanningBinomialTree:
    """SBT_{H_4}(0100) — the tree of Figure 4(b)."""
    return SpanningBinomialTree.induced(Hypercube(4), 0b0100)


class TestFigure4:
    def test_root_children(self):
        tree = build_figure4_tree()
        assert tree.children(0b0100) == (0b1100, 0b0110, 0b0101)

    def test_parent_relationships(self):
        tree = build_figure4_tree()
        assert tree.parent(0b1100) == 0b0100
        assert tree.parent(0b0110) == 0b0100
        assert tree.parent(0b0101) == 0b0100
        assert tree.parent(0b1110) == 0b1100
        assert tree.parent(0b1101) == 0b1100
        assert tree.parent(0b0111) == 0b0110
        assert tree.parent(0b1111) == 0b1110

    def test_root_has_no_parent(self):
        assert build_figure4_tree().parent(0b0100) is None

    def test_size_spans_subcube(self):
        assert build_figure4_tree().size == 8


class TestStructuralInvariants:
    @pytest.mark.parametrize("dimension,root", [(4, 0), (4, 0b0110), (5, 0b10001), (6, 0)])
    def test_spans_every_node_exactly_once(self, dimension, root):
        tree = SpanningBinomialTree.induced(Hypercube(dimension), root)
        visited = [node for node, _ in tree.bfs()]
        assert len(visited) == tree.size
        assert len(set(visited)) == tree.size

    def test_full_cube_tree_spans_cube(self):
        cube = Hypercube(5)
        tree = SpanningBinomialTree.of_cube(cube, 0b10101)
        visited = {node for node, _ in tree.bfs()}
        assert visited == set(cube.nodes())

    def test_parent_child_consistency(self):
        tree = SpanningBinomialTree.induced(Hypercube(6), 0b001001)
        for node, _ in tree.bfs():
            for child in tree.children(node):
                assert tree.parent(child) == node

    def test_lemma32_depth_equals_hamming_distance(self):
        cube = Hypercube(6)
        tree = SpanningBinomialTree.induced(cube, 0b010010)
        for node, depth in tree.bfs():
            assert depth == cube.hamming(node, 0b010010)

    def test_level_sizes_binomial(self):
        tree = SpanningBinomialTree.induced(Hypercube(6), 0b100000)
        for depth in range(tree.height + 1):
            assert len(list(tree.level(depth))) == math.comb(tree.height, depth)

    def test_parent_edge_is_hypercube_edge(self):
        cube = Hypercube(5)
        tree = SpanningBinomialTree.induced(cube, 0b00010)
        for node, _ in tree.bfs():
            parent = tree.parent(node)
            if parent is not None:
                assert cube.hamming(node, parent) == 1

    def test_branch_dimension_is_lowest_differing(self):
        tree = SpanningBinomialTree.induced(Hypercube(5), 0b00100)
        assert tree.branch_dimension(0b00100) == -1
        assert tree.branch_dimension(0b00101) == 0
        assert tree.branch_dimension(0b01100) == 3

    def test_membership(self):
        tree = SpanningBinomialTree.induced(Hypercube(4), 0b0100)
        assert 0b0101 in tree
        assert 0b0001 not in tree  # does not contain the root
        with pytest.raises(ValueError):
            tree.depth(0b0001)


class TestTraversals:
    def test_bfs_depths_nondecreasing(self):
        tree = SpanningBinomialTree.induced(Hypercube(6), 0b000100)
        depths = [depth for _, depth in tree.bfs()]
        assert depths == sorted(depths)

    def test_bottom_up_depths_nonincreasing(self):
        tree = SpanningBinomialTree.induced(Hypercube(5), 0b00001)
        depths = [depth for _, depth in tree.bfs_bottom_up()]
        assert depths == sorted(depths, reverse=True)

    def test_bottom_up_visits_everything(self):
        tree = SpanningBinomialTree.induced(Hypercube(5), 0b01000)
        assert {n for n, _ in tree.bfs_bottom_up()} == {n for n, _ in tree.bfs()}

    def test_dfs_visits_everything(self):
        tree = SpanningBinomialTree.induced(Hypercube(5), 0b00100)
        assert {n for n, _ in tree.dfs()} == {n for n, _ in tree.bfs()}

    def test_dfs_preorder_parent_before_child(self):
        tree = SpanningBinomialTree.induced(Hypercube(5), 0)
        position = {node: i for i, (node, _) in enumerate(tree.dfs())}
        for node in position:
            parent = tree.parent(node)
            if parent is not None:
                assert position[parent] < position[node]

    def test_path_to_root(self):
        tree = build_figure4_tree()
        assert tree.path_to_root(0b1111) == [0b1111, 0b1110, 0b1100, 0b0100]
        assert tree.path_to_root(0b0100) == [0b0100]

    def test_path_length_is_depth(self):
        tree = SpanningBinomialTree.induced(Hypercube(6), 0b010000)
        for node, depth in tree.bfs():
            assert len(tree.path_to_root(node)) == depth + 1

    def test_level_invalid_depth(self):
        with pytest.raises(ValueError):
            list(build_figure4_tree().level(4))


class TestBfsMatchesProtocolQueue:
    def test_bfs_order_equals_tquery_queue_order(self):
        """The T_QUERY queue (FIFO of (node, d) pairs, children with
        dimensions below d) must walk exactly the SBT in BFS order."""
        from collections import deque

        cube = Hypercube(6)
        root = 0b001000
        tree = SpanningBinomialTree.induced(cube, root)

        order = [root]
        queue = deque(
            (root | (1 << i), i)
            for i in range(cube.dimension - 1, -1, -1)
            if not (root >> i) & 1
        )
        while queue:
            node, d = queue.popleft()
            order.append(node)
            queue.extend(
                (node | (1 << i), i)
                for i in range(cube.dimension - 1, -1, -1)
                if i < d and not (node >> i) & 1
            )
        assert order == [node for node, _ in tree.bfs()]
