"""Unit tests for the simulated network (plus latency models and metrics)."""

import pytest

from repro.net.transport import RpcCall, sequential_rpc_many
from repro.sim.latency import ConstantLatency, LogNormalLatency, UniformLatency
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import NetworkError, NodeUnreachableError, SimulatedNetwork


def echo_handler(message):
    return {"echo": message.payload.get("value")}


class TestRegistration:
    def test_register_and_reach(self):
        net = SimulatedNetwork()
        net.register(1, echo_handler)
        net.register(2, echo_handler)
        assert net.rpc(1, 2, "app.echo", {"value": 7}) == {"echo": 7}

    def test_unknown_destination(self):
        net = SimulatedNetwork()
        net.register(1, echo_handler)
        with pytest.raises(NodeUnreachableError):
            net.rpc(1, 99, "app.echo")

    def test_unregister(self):
        net = SimulatedNetwork()
        net.register(1, echo_handler)
        net.register(2, echo_handler)
        net.unregister(2)
        assert not net.is_registered(2)
        with pytest.raises(NodeUnreachableError):
            net.rpc(1, 2, "app.echo")

    def test_addresses(self):
        net = SimulatedNetwork()
        net.register(5, echo_handler)
        net.register(3, echo_handler)
        assert net.addresses() == frozenset({3, 5})


class TestFailureInjection:
    def test_failed_node_unreachable(self):
        net = SimulatedNetwork()
        net.register(1, echo_handler)
        net.register(2, echo_handler)
        net.fail(2)
        assert not net.is_alive(2)
        with pytest.raises(NodeUnreachableError):
            net.rpc(1, 2, "app.echo")

    def test_recover(self):
        net = SimulatedNetwork()
        net.register(1, echo_handler)
        net.register(2, echo_handler)
        net.fail(2)
        net.recover(2)
        assert net.rpc(1, 2, "app.echo", {"value": 1}) == {"echo": 1}

    def test_fail_unknown_rejected(self):
        net = SimulatedNetwork()
        with pytest.raises(NetworkError):
            net.fail(42)

    def test_request_to_dead_node_still_accounted(self):
        # The request is sent and times out: it must count as traffic.
        net = SimulatedNetwork()
        net.register(1, echo_handler)
        net.register(2, echo_handler)
        net.fail(2)
        with net.trace() as trace:
            with pytest.raises(NodeUnreachableError):
                net.rpc(1, 2, "app.echo")
        assert trace.message_count == 1


class TestAccounting:
    def test_rpc_costs_two_messages(self):
        net = SimulatedNetwork()
        net.register(1, echo_handler)
        net.register(2, echo_handler)
        net.rpc(1, 2, "app.echo")
        assert net.metrics.counter("network.messages") == 2

    def test_local_rpc_is_free(self):
        net = SimulatedNetwork()
        net.register(1, echo_handler)
        net.rpc(1, 1, "app.echo")
        assert net.metrics.counter("network.messages") == 0

    def test_rpc_advances_clock_by_round_trip(self):
        net = SimulatedNetwork(latency=ConstantLatency(3.0))
        net.register(1, echo_handler)
        net.register(2, echo_handler)
        net.rpc(1, 2, "app.echo")
        assert net.scheduler.now == 6.0

    def test_send_one_way(self):
        net = SimulatedNetwork()
        received = []
        net.register(1, echo_handler)
        net.register(2, lambda m: received.append(m.payload["value"]))
        net.send(1, 2, "app.note", {"value": 9})
        assert net.metrics.counter("network.messages") == 1
        net.scheduler.run()
        assert received == [9]

    def test_send_dropped_if_dead_at_delivery(self):
        net = SimulatedNetwork()
        received = []
        net.register(1, echo_handler)
        net.register(2, lambda m: received.append(1))
        net.send(1, 2, "app.note")
        net.fail(2)
        net.scheduler.run()
        assert received == []


class TestTrace:
    def test_trace_captures_window_only(self):
        net = SimulatedNetwork()
        net.register(1, echo_handler)
        net.register(2, echo_handler)
        net.rpc(1, 2, "app.echo")
        with net.trace() as trace:
            net.rpc(1, 2, "app.echo")
        net.rpc(1, 2, "app.echo")
        assert trace.message_count == 2

    def test_nested_traces(self):
        net = SimulatedNetwork()
        net.register(1, echo_handler)
        net.register(2, echo_handler)
        with net.trace() as outer:
            net.rpc(1, 2, "app.echo")
            with net.trace() as inner:
                net.rpc(1, 2, "app.echo")
        assert inner.message_count == 2
        assert outer.message_count == 4

    def test_nodes_contacted(self):
        net = SimulatedNetwork()
        for address in (1, 2, 3):
            net.register(address, echo_handler)
        with net.trace() as trace:
            net.rpc(1, 2, "app.echo")
            net.rpc(1, 3, "app.echo")
            net.rpc(1, 2, "app.echo")
        assert trace.nodes_contacted() == {2, 3}
        assert trace.nodes_contacted(exclude={2}) == {3}

    def test_count_kind(self):
        net = SimulatedNetwork()
        net.register(1, echo_handler)
        net.register(2, echo_handler)
        with net.trace() as trace:
            net.rpc(1, 2, "app.echo")
            net.send(1, 2, "app.note")
        assert trace.count_kind("app.echo") == 2  # request + reply
        assert trace.count_kind("app.note") == 1


class TestLatencyModels:
    def test_constant(self):
        assert ConstantLatency(5.0).delay(1, 2) == 5.0

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)

    def test_uniform_bounds_and_stability(self):
        model = UniformLatency(10.0, 100.0, seed=1)
        delay = model.delay(3, 4)
        assert 10.0 <= delay <= 100.0
        assert model.delay(3, 4) == delay  # per-link stable
        assert model.delay(4, 3) == delay  # symmetric

    def test_uniform_links_differ(self):
        model = UniformLatency(10.0, 100.0, seed=1)
        delays = {model.delay(0, i) for i in range(1, 20)}
        assert len(delays) > 10

    def test_lognormal_positive(self):
        model = LogNormalLatency(median_ms=50.0, sigma=0.5, seed=2)
        for i in range(1, 30):
            assert model.delay(0, i) > 0

    def test_lognormal_validation(self):
        with pytest.raises(ValueError):
            LogNormalLatency(median_ms=0.0)


class TestMetrics:
    def test_counters(self):
        metrics = MetricsRegistry()
        metrics.increment("a")
        metrics.increment("a", 4)
        assert metrics.counter("a") == 5
        assert metrics.counter("missing") == 0

    def test_summary(self):
        metrics = MetricsRegistry()
        for value in (1.0, 2.0, 3.0, 4.0):
            metrics.record("hops", value)
        summary = metrics.summary("hops")
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.p50 == 2.0

    def test_empty_summary(self):
        assert MetricsRegistry().summary("nothing").count == 0

    def test_reset_prefix(self):
        metrics = MetricsRegistry()
        metrics.increment("a.x")
        metrics.increment("b.y")
        metrics.reset("a.")
        assert metrics.counter("a.x") == 0
        assert metrics.counter("b.y") == 1

    def test_scoped(self):
        metrics = MetricsRegistry()
        scoped = metrics.scoped("dht")
        scoped.increment("lookups")
        scoped.record("hops", 3.0)
        assert metrics.counter("dht.lookups") == 1
        assert scoped.summary("hops").mean == 3.0


class TestBatchRpc:
    """SimulatedNetwork.rpc_many: concurrent in virtual time, sequential
    in accounting."""

    def make(self):
        network = SimulatedNetwork(latency=ConstantLatency(1.0))
        for address in (1, 2, 3):
            network.register(address, lambda m, a=address: {"from": a, **m.payload})
        return network

    def calls(self, *dsts, src=0):
        return [RpcCall(src, dst, "test.ping", {"n": i}) for i, dst in enumerate(dsts)]

    def test_values_in_call_order(self):
        network = self.make()
        outcomes = network.rpc_many(self.calls(3, 1, 2))
        assert [o.unwrap()["from"] for o in outcomes] == [3, 1, 2]
        assert [o.unwrap()["n"] for o in outcomes] == [0, 1, 2]

    def test_batch_elapses_one_round_trip(self):
        network = self.make()
        network.rpc_many(self.calls(1, 2, 3))
        # Three calls in flight together: slowest round trip, not 3x.
        assert network.now() == 2.0

    def test_accounting_matches_sequential_reference(self):
        batched, reference = self.make(), self.make()
        with batched.trace() as batch_window:
            batched.rpc_many(self.calls(1, 2, 3))
        with reference.trace() as ref_window:
            sequential_rpc_many(reference, self.calls(1, 2, 3))
        assert batch_window.message_count == ref_window.message_count == 6
        assert [
            (m.src, m.dst, m.kind, m.is_reply) for m in batch_window.messages
        ] == [(m.src, m.dst, m.kind, m.is_reply) for m in ref_window.messages]
        # ...but the sequential loop paid three round trips.
        assert reference.now() == 3 * batched.now()

    def test_dead_destination_is_a_per_call_outcome(self):
        network = self.make()
        network.fail(2)
        outcomes = network.rpc_many(self.calls(1, 2, 3))
        assert [o.ok for o in outcomes] == [True, False, True]
        with pytest.raises(NodeUnreachableError):
            outcomes[1].unwrap()
        # The lost request was still accounted: 2 + 1 + 2 messages.
        assert network.metrics.counter("network.messages") == 5

    def test_handler_exception_ferried_not_raised(self):
        network = self.make()

        def boom(message):
            raise RuntimeError("poisoned")

        network.register(2, boom)
        outcomes = network.rpc_many(self.calls(1, 2, 3))
        assert [o.ok for o in outcomes] == [True, False, True]
        assert isinstance(outcomes[1].error, RuntimeError)

    def test_local_call_is_free_and_instant(self):
        network = self.make()
        outcomes = network.rpc_many([RpcCall(1, 1, "test.ping", {})])
        assert outcomes[0].ok
        assert network.metrics.counter("network.messages") == 0
        assert network.now() == 0.0

    def test_loss_model_draws_in_call_order(self):
        seeded_a, seeded_b = self.make(), self.make()
        seeded_a.set_loss_rate(0.5, rng=7)
        seeded_b.set_loss_rate(0.5, rng=7)
        pattern_a = [o.ok for o in seeded_a.rpc_many(self.calls(1, 2, 3, 1, 2, 3))]
        pattern_b = [o.ok for o in seeded_b.rpc_many(self.calls(1, 2, 3, 1, 2, 3))]
        assert pattern_a == pattern_b  # deterministic given the seed
        assert not all(pattern_a)  # and the model actually bites

    def test_empty_batch_is_a_noop(self):
        network = self.make()
        assert network.rpc_many([]) == []
        assert network.now() == 0.0
