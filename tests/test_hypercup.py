"""Tests for the native hypercube overlay (HyperCuP-style, §3.2)."""

import pytest

from repro.core.index import HypercubeIndex
from repro.core.mapping import HypercubeMapping
from repro.core.search import SuperSetSearch
from repro.dht.hypercup import HypercubeOverlay, HypercubeRoutingError
from repro.hypercube.hypercube import Hypercube


@pytest.fixture()
def overlay():
    return HypercubeOverlay.build(bits=5)


class TestTopology:
    def test_complete_population(self, overlay):
        assert len(overlay.nodes) == 32

    def test_neighbors_are_bit_flips(self, overlay):
        node = overlay.nodes[0b01010]
        assert set(node.neighbors()) == {
            0b01011, 0b01000, 0b01110, 0b00010, 0b11010,
        }

    def test_size_guard(self):
        with pytest.raises(ValueError):
            HypercubeOverlay.build(bits=20)


class TestRouting:
    def test_owner_is_identity(self, overlay):
        for key in range(32):
            assert overlay.local_owner(key) == key

    def test_lookup_reaches_key(self, overlay):
        origin = 0
        for key in range(32):
            result = overlay.lookup(key, origin=origin)
            assert result.owner == key

    def test_hops_equal_hamming_distance(self, overlay):
        origin = 0b10101
        for key in range(32):
            result = overlay.lookup(key, origin=origin)
            expected = bin(origin ^ key).count("1")
            # The final arrival is not a route_step query, hence -1
            # (except the local zero-distance case).
            assert result.hops == max(0, expected - 1)

    def test_path_is_monotone_descent(self, overlay):
        result = overlay.lookup(0b11111, origin=0b00000)
        distances = [bin(hop ^ 0b11111).count("1") for hop in result.path]
        assert distances == sorted(distances, reverse=True)

    def test_reroutes_around_dead_vertices(self, overlay):
        # Kill one vertex on the default path; routing must detour.
        overlay.network.fail(0b00001)
        result = overlay.lookup(0b00111, origin=0b00000)
        assert result.owner == 0b00111
        assert 0b00001 not in result.path

    def test_dead_destination_surrogates_to_neighbor(self, overlay):
        overlay.network.fail(0b01100)
        result = overlay.lookup(0b01100, origin=0)
        assert result.owner in {0b01101, 0b01110, 0b01000, 0b00100, 0b11100}

    def test_isolated_destination_raises(self, overlay):
        overlay.network.fail(0b00011)
        for dimension in range(5):
            overlay.network.fail(0b00011 ^ (1 << dimension))
        with pytest.raises(HypercubeRoutingError):
            overlay.lookup(0b00011, origin=0b11100)


class TestIdentityMapping:
    def test_identity_requires_matching_dimension(self, overlay):
        with pytest.raises(ValueError):
            HypercubeMapping(Hypercube(4), overlay, identity=True)

    def test_logical_equals_physical(self, overlay):
        cube = Hypercube(5)
        mapping = HypercubeMapping(cube, overlay, identity=True)
        for logical in cube.nodes():
            assert mapping.dht_key(logical) == logical
            assert mapping.physical_owner(logical) == logical

    def test_index_over_native_cube(self, overlay):
        cube = Hypercube(5)
        index = HypercubeIndex(
            cube, overlay, mapping=HypercubeMapping(cube, overlay, identity=True)
        )
        index.insert("x", {"alpha", "beta"}, holder=3)
        index.insert("y", {"alpha", "beta", "gamma"}, holder=4)
        assert index.pin_search({"alpha", "beta"}).object_ids == ("x",)
        result = SuperSetSearch(index).run({"alpha"})
        assert set(result.object_ids) == {"x", "y"}
        # Under the identity mapping, every visit's physical node IS the
        # logical node: one overlay hop per hypercube-layer message.
        for visit in result.visits:
            assert visit.physical == visit.logical
