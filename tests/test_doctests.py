"""Run every docstring example in the package as a test.

Docstring examples are part of the public documentation; this keeps
them honest against the implementation.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    module.name
    for module in pkgutil.walk_packages(repro.__path__, "repro.")
    if not module.name.endswith("__main__")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module_name}"


def test_doctests_exist_somewhere():
    attempted = 0
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        attempted += doctest.testmod(module, verbose=False).attempted
    assert attempted >= 40  # the package documents by example
