"""Integration tests: the full protocol stack over real TCP sockets.

The acceptance bar for the networking subsystem: a 16-node
:class:`~repro.net.cluster.LocalCluster` must run publish, pin search,
superset search and cumulative search end-to-end over loopback sockets
and return *exactly* what the simulator returns for the same seed —
same result sets, same message counts — and tear down without leaking
connections or threads.
"""

import threading

import pytest

from repro.core.config import ServiceConfig
from repro.core.service import KeywordSearchService
from repro.net.cluster import LocalCluster
from repro.net.node import NodeDaemon, cluster_addresses

CONFIG = ServiceConfig(dimension=6, num_dht_nodes=16, seed=11, cache_capacity=8)

CORPUS = [
    ("paper.pdf", {"dht", "search", "p2p"}),
    ("slides.ppt", {"dht", "search"}),
    ("notes.txt", {"p2p", "overlay"}),
    ("code.tar", {"dht", "overlay", "chord"}),
    ("data.csv", {"search"}),
    ("thesis.pdf", {"dht", "p2p", "overlay", "search"}),
]


def drive(service: KeywordSearchService) -> dict:
    """Publish the corpus and run every search mode; capture everything
    observable so the two media can be compared key by key."""
    for object_id, keywords in CORPUS:
        service.publish(object_id, keywords)
    outcome = {
        "pin": service.pin_search({"dht", "search", "p2p"}).results(),
        "pin_miss": service.pin_search({"nosuch"}).results(),
        "superset": service.superset_search({"dht"}).results(),
        "superset_thresholded": service.superset_search({"search"}, threshold=2).results(),
        "superset_cached": service.superset_search({"dht"}).results(),  # second: cache path
        "read": tuple(service.read("paper.pdf")),
    }
    session = service.cumulative_search({"dht"})
    pages = []
    while not session.exhausted and len(pages) < 10:
        batch = session.next_batch(2)
        pages.append(tuple(found.object_id for found in batch.objects))
    outcome["cumulative_pages"] = tuple(pages)
    outcome["messages"] = service.messages_sent()
    return outcome


class TestLocalCluster:
    @pytest.fixture(scope="class")
    def outcomes(self):
        """Drive the identical workload over both media, once."""
        simulated = drive(KeywordSearchService.create(CONFIG))
        with LocalCluster(CONFIG) as cluster:
            networked = drive(cluster.service)
            endpoints = cluster.endpoints
            addresses = cluster.addresses()
        return simulated, networked, endpoints, addresses

    def test_sixteen_real_endpoints(self, outcomes):
        _, _, endpoints, addresses = outcomes
        assert len(addresses) == 16
        assert sorted(endpoints) == addresses
        ports = {port for _, port in endpoints.values()}
        assert len(ports) == 16  # one listening socket per node

    @pytest.mark.parametrize(
        "key",
        [
            "pin",
            "pin_miss",
            "superset",
            "superset_thresholded",
            "superset_cached",
            "cumulative_pages",
            "read",
        ],
    )
    def test_results_identical_to_simulator(self, outcomes, key):
        simulated, networked, _, _ = outcomes
        assert networked[key] == simulated[key]

    def test_search_actually_found_things(self, outcomes):
        simulated, _, _, _ = outcomes
        assert simulated["pin"] == ("paper.pdf",)
        assert set(simulated["superset"]) == {"paper.pdf", "slides.ppt", "code.tar", "thesis.pdf"}
        assert simulated["pin_miss"] == ()

    def test_message_counts_identical_to_simulator(self, outcomes):
        # The strongest parity statement: not just the same answers, the
        # same number of protocol messages to produce them.
        simulated, networked, _, _ = outcomes
        assert networked["messages"] == simulated["messages"]
        assert networked["messages"] > 0

    def test_wire_traffic_really_happened(self):
        with LocalCluster(CONFIG) as cluster:
            drive(cluster.service)
            metrics = cluster.transport.metrics
            assert metrics.counter("net.frames_sent") > 0
            assert metrics.counter("net.bytes_sent") > 0
            assert metrics.counter("net.protocol_errors") == 0
            assert metrics.summary("net.rpc_latency").count > 0

    def test_no_leaks_after_close(self):
        cluster = LocalCluster(CONFIG)
        drive(cluster.service)
        assert cluster.transport.open_connection_count() > 0
        cluster.close()
        assert cluster.transport.open_connection_count() == 0
        assert not any(
            thread.name.startswith("repro-net") for thread in threading.enumerate()
        )


class TestNodeDaemon:
    def test_multi_daemon_deployment(self):
        """Four daemons, each serving one address and dialling the other
        three: publish at one daemon, search from another."""
        config = ServiceConfig(dimension=6, num_dht_nodes=4, seed=7)
        addresses = cluster_addresses(config)
        assert len(addresses) == 4
        daemons = {address: NodeDaemon(config, address) for address in addresses}
        try:
            for address, daemon in daemons.items():
                for other, peer in daemons.items():
                    if other != address:
                        daemon.transport.peers[other] = peer.endpoint
            publisher, searcher = addresses[0], addresses[-1]
            daemons[publisher].service.publish("paper.pdf", {"dht", "search"}, holder=publisher)
            found = daemons[searcher].service.pin_search({"dht", "search"}, origin=searcher)
            assert found.results() == ("paper.pdf",)
            superset = daemons[searcher].service.superset_search({"dht"}, origin=searcher)
            assert superset.results() == ("paper.pdf",)
        finally:
            for daemon in daemons.values():
                daemon.close()
        assert not any(
            thread.name.startswith("repro-net") for thread in threading.enumerate()
        )

    def test_rejects_address_outside_deployment(self):
        config = ServiceConfig(dimension=6, num_dht_nodes=4, seed=7)
        with pytest.raises(ValueError, match="not part of this deployment"):
            NodeDaemon(config, 123)

    def test_cluster_addresses_matches_every_medium(self):
        config = ServiceConfig(dimension=6, num_dht_nodes=8, seed=3)
        expected = cluster_addresses(config)
        with LocalCluster(config) as cluster:
            assert cluster.addresses() == expected


class TestNodeCli:
    def test_addresses_subcommand(self, capsys):
        from repro.cli import main

        code = main(
            ["node", "addresses", "--dimension", "6", "--nodes", "4", "--seed", "7"]
        )
        assert code == 0
        printed = [int(line) for line in capsys.readouterr().out.split()]
        assert printed == cluster_addresses(ServiceConfig(dimension=6, num_dht_nodes=4, seed=7))
