"""Tests for the observability layer: per-query tracing, metrics
export, the stats endpoint — and the cache-poisoning / completeness
regressions fixed alongside it."""

import json
from urllib.request import urlopen

import pytest

from repro.core.config import ServiceConfig
from repro.core.index import HypercubeIndex
from repro.core.search import SuperSetSearch, TraversalOrder
from repro.core.service import KeywordSearchService
from repro.dht.chord import ChordNetwork
from repro.hypercube.hypercube import Hypercube
from repro.obs.export import (
    MetricsSnapshot,
    lint_prometheus_text,
    prometheus_text,
    snapshot_registry,
)
from repro.obs.trace import QueryTrace, TraceRecorder, active_recorder, recording

from tests.conftest import CATALOGUE


def oracle(query: set) -> set:
    return {oid for oid, kw in CATALOGUE.items() if frozenset(query) <= kw}


def make_service(**config_kwargs) -> KeywordSearchService:
    config = ServiceConfig(dimension=6, num_dht_nodes=16, seed=3, **config_kwargs)
    service = KeywordSearchService.create(config)
    for object_id, keywords in CATALOGUE.items():
        service.publish(object_id, keywords)
    return service


class TestTraceRecorder:
    def test_off_by_default(self):
        assert active_recorder() is None

    def test_recording_scopes_and_restores(self):
        recorder = TraceRecorder()
        with recording(recorder):
            assert active_recorder() is recorder
        assert active_recorder() is None

    def test_events_are_ordered_and_stamped(self):
        from repro.net.transport import Message

        clock = iter([1.0, 3.0])
        recorder = TraceRecorder(clock=lambda: next(clock))
        recorder.emit("query", q=1)
        recorder.raw.append(Message(7, 8, "ping", {}))  # hot path: bare append
        recorder.emit("route", target=3)
        trace = recorder.finish({"query": ["a"]})
        assert [event.seq for event in trace.events] == [0, 1, 2]
        # The untimed message row inherits the preceding event's stamp.
        assert [event.time for event in trace.events] == [1.0, 1.0, 3.0]
        assert trace.message_count == 1
        message = trace.events_of("message")[0]
        assert message.detail == {"src": 7, "dst": 8, "msg": "ping", "reply": False}

    def test_json_lines_round_trip(self):
        from repro.net.transport import Message

        recorder = TraceRecorder()
        recorder.emit("query", threshold=2)
        recorder.raw.append(Message(1, 2, "hindex.scan", {}))
        trace = recorder.finish({"messages": 1, "complete": True})
        restored = QueryTrace.from_json_lines(trace.to_json_lines())
        assert restored == trace


class TestQueryTracing:
    """The trace must account for what the metrics counted."""

    def test_trace_attached_only_when_requested(self):
        service = make_service()
        assert service.superset_search({"mp3"}).trace is None
        assert service.superset_search({"mp3"}, trace=True).trace is not None

    def test_trace_accounts_for_every_counted_message(self):
        # The Figure 8 shape: an exhaustive walk of the query's
        # subhypercube.  Every message the network.messages counter saw
        # during the query must appear as a trace event, 1:1.
        service = make_service()
        result = service.superset_search({"mp3"}, trace=True)
        trace = result.trace
        assert trace.message_count == result.messages
        assert trace.visit_count == len(result.visits)
        assert len(trace.events_of("query")) == 1

    def test_visit_events_mirror_the_visit_records(self):
        service = make_service()
        result = service.superset_search({"jazz"}, trace=True)
        events = result.trace.events_of("visit")
        assert len(events) == len(result.visits)
        for event, visit in zip(events, result.visits):
            assert event.detail["logical"] == visit.logical
            assert event.detail["physical"] == visit.physical
            assert event.detail["returned"] == visit.returned
            assert event.detail["status"] == visit.status

    def test_route_events_cover_the_root_lookup(self):
        service = make_service()
        result = service.superset_search({"mp3"}, trace=True)
        routes = result.trace.events_of("route")
        assert routes, "the root lookup must be traced"
        assert routes[0].detail["target"] == result.root_logical
        assert routes[0].detail["owner"] == result.root_physical

    def test_cache_events_traced(self):
        service = make_service(cache_capacity=16)
        first = service.superset_search({"mp3"}, trace=True)
        assert first.trace.events_of("cache_get")[0].detail["hit"] is False
        assert first.trace.events_of("cache_put")[0].detail["stored"] is True
        second = service.superset_search({"mp3"}, trace=True)
        assert second.cache_hit
        assert second.trace.events_of("cache_get")[0].detail["hit"] is True

    def test_tracing_changes_nothing_observable(self):
        # Two identical stacks, one traced — byte-identical outcomes.
        plain = make_service().superset_search({"mp3", "jazz"})
        traced = make_service().superset_search({"mp3", "jazz"}, trace=True)
        assert traced == plain  # SearchResult equality excludes `trace`
        assert traced.messages == plain.messages
        assert traced.visits == plain.visits


class TestCachePoisoningRegression:
    """A degraded walk must not poison the root's result cache."""

    @staticmethod
    def make_stack():
        ring = ChordNetwork.build(bits=16, num_nodes=24, seed=5)
        index = HypercubeIndex(Hypercube(6), ring, cache_capacity=16)
        holder = ring.any_address()
        for object_id, keywords in CATALOGUE.items():
            index.insert(object_id, keywords, holder)
        return ring, index, SuperSetSearch(index, skip_unreachable=True)

    def test_degraded_search_is_not_cached(self):
        ring, index, searcher = self.make_stack()
        query = {"mp3"}
        baseline = searcher.run(query, origin=ring.any_address())
        assert set(baseline.object_ids) == oracle(query)
        victim = next(
            visit.physical
            for visit in baseline.visits
            if visit.returned > 0 and visit.physical != baseline.root_physical
        )

        index.dolr.network.fail(victim)
        degraded = searcher.run(query, origin=baseline.root_physical, use_cache=True)
        assert degraded.degraded
        assert set(degraded.object_ids) < oracle(query)

        index.dolr.network.recover(victim)
        recovered = searcher.run(query, origin=baseline.root_physical, use_cache=True)
        assert not recovered.cache_hit, "the degraded result must not have been cached"
        assert set(recovered.object_ids) == oracle(query)

    def test_healthy_search_still_cached(self):
        ring, index, searcher = self.make_stack()
        origin = ring.any_address()
        first = searcher.run({"mp3"}, origin=origin, use_cache=True)
        assert not first.degraded and not first.cache_hit
        second = searcher.run({"mp3"}, origin=origin, use_cache=True)
        assert second.cache_hit
        assert set(second.object_ids) == oracle({"mp3"})


class TestCompletenessRegression:
    """A root visit that satisfies the threshold with nothing left to
    explore is complete, not truncated."""

    @staticmethod
    def index_rooted_at_all_ones(num_objects: int):
        """An index whose query roots at the all-ones node — the one SBT
        root with no children.  F_h sets one bit per keyword, so a query
        covering every dimension roots there."""
        ring = ChordNetwork.build(bits=16, num_nodes=24, seed=5)
        index = HypercubeIndex(Hypercube(3), ring)
        keywords: dict[int, str] = {}
        for candidate in range(10_000):
            keyword = f"kw{candidate}"
            dim = index.mapper.node_for(frozenset({keyword})).bit_length() - 1
            keywords.setdefault(dim, keyword)
            if len(keywords) == 3:
                break
        query = frozenset(keywords.values())
        assert index.mapper.node_for(query) == (1 << 3) - 1
        holder = ring.any_address()
        for number in range(num_objects):
            index.insert(f"obj-{number}", query, holder)
        return index, query

    def test_root_satisfying_threshold_with_no_children_is_complete(self):
        index, query = self.index_rooted_at_all_ones(num_objects=1)
        result = SuperSetSearch(index).run(query, threshold=1)
        assert len(result.objects) == 1
        assert result.complete, "nothing was left unexplored"

    def test_limit_cut_scan_stays_incomplete(self):
        index, query = self.index_rooted_at_all_ones(num_objects=2)
        result = SuperSetSearch(index).run(query, threshold=1)
        assert len(result.objects) == 1
        assert not result.complete, "the root held a second match"


class TestMetricsExport:
    def test_snapshot_and_delta(self):
        service = make_service()
        before = service.metrics_snapshot()
        service.superset_search({"mp3"})
        after = service.metrics_snapshot()
        window = after.delta(before)
        assert window.counters["network.messages"] > 0
        assert window.counters["network.messages"] == (
            after.counters["network.messages"] - before.counters["network.messages"]
        )

    def test_delta_drops_unchanged_counters(self):
        service = make_service()
        snapshot = service.metrics_snapshot()
        assert snapshot.delta(snapshot).counters == {}

    def test_json_round_trip(self):
        service = make_service()
        service.superset_search({"jazz"})
        snapshot = service.metrics_snapshot()
        assert MetricsSnapshot.from_json(snapshot.to_json()) == snapshot

    def test_prometheus_text_lints_clean(self):
        service = make_service()
        service.superset_search({"mp3"})
        text = prometheus_text(service.metrics_snapshot())
        assert lint_prometheus_text(text) == []
        assert "repro_network_messages" in text

    def test_linter_catches_garbage(self):
        assert lint_prometheus_text("bad metric name! 1\n")
        assert lint_prometheus_text("# TYPE x bogus\nx 1\n")
        assert lint_prometheus_text("undeclared_sample 1\n") != []
        assert lint_prometheus_text('# TYPE ok counter\nok not-a-number\n')


class TestStatsEndpoint:
    def test_local_cluster_serves_prometheus_metrics(self):
        # The acceptance scenario: a 16-node TCP cluster scrapable over
        # HTTP with lint-clean Prometheus output.
        from repro.net.cluster import LocalCluster

        config = ServiceConfig(dimension=6, num_dht_nodes=16, seed=3)
        with LocalCluster(config, stats_port=0) as cluster:
            cluster.service.publish("paper.pdf", {"dht", "search"})
            cluster.service.superset_search({"dht"})
            host, port = cluster.stats_endpoint
            with urlopen(f"http://{host}:{port}/metrics") as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith("text/plain")
                body = response.read().decode()
            assert lint_prometheus_text(body) == []
            assert "repro_network_messages" in body
            with urlopen(f"http://{host}:{port}/metrics.json") as response:
                data = json.loads(response.read().decode())
            assert data["counters"]["network.messages"] > 0
            with urlopen(f"http://{host}:{port}/healthz") as response:
                assert response.read() == b"ok\n"

    def test_unknown_path_is_404(self):
        from repro.obs.stats import StatsServer
        from repro.sim.metrics import MetricsRegistry

        with StatsServer(MetricsRegistry()) as server:
            host, port = server.endpoint
            with pytest.raises(Exception) as excinfo:
                urlopen(f"http://{host}:{port}/nope")
            assert "404" in str(excinfo.value)


class TestSearchOptionsTrace:
    def test_options_object_carries_trace_flag(self):
        from repro.core.config import SearchOptions

        service = make_service()
        result = service.search({"mp3"}, SearchOptions(trace=True))
        assert result.trace is not None
        assert result.trace.summary["complete"] is True

    def test_traversal_orders_all_traced(self):
        service = make_service()
        for order in TraversalOrder:
            result = service.superset_search({"mp3"}, order=order, trace=True)
            assert result.trace.visit_count == len(result.visits)
            assert result.trace.message_count == result.messages


class TestCacheMetricsExport:
    """Satellite: cache.hits/misses/evictions/invalidations/used are
    exported through MetricsSnapshot and the live /metrics endpoint."""

    def test_snapshot_carries_cache_counters(self):
        service = make_service(cache_capacity=16)
        service.superset_search({"mp3"})  # miss + fill
        service.superset_search({"mp3"})  # hit
        counters = service.metrics_snapshot().counters
        assert counters["cache.misses"] >= 1
        assert counters["cache.hits"] >= 1
        assert counters["cache.used"] >= 1  # occupancy gauge, counter-mirrored

    def test_invalidations_counted_on_write(self):
        service = make_service(cache_capacity=16)
        service.superset_search({"mp3"})
        before = service.metrics_snapshot()
        service.publish("brand-new", {"mp3", "new"})
        window = service.metrics_snapshot().delta(before)
        assert window.counters.get("cache.invalidate_rpcs", 0) >= 1
        assert window.counters.get("cache.invalidations", 0) >= 1

    def test_used_gauge_falls_on_invalidation(self):
        service = make_service(cache_capacity=16)
        service.superset_search({"mp3"})
        used_before = service.metrics_snapshot().counters["cache.used"]
        service.publish("brand-new", {"mp3", "new"})
        used_after = service.metrics_snapshot().counters.get("cache.used", 0)
        assert used_after < used_before

    def test_live_endpoint_serves_cache_counters(self):
        from repro.net.cluster import LocalCluster

        config = ServiceConfig(dimension=6, num_dht_nodes=16, seed=3, cache_capacity=8)
        with LocalCluster(config, stats_port=0) as cluster:
            cluster.service.publish("paper.pdf", {"dht", "search"})
            cluster.service.superset_search({"dht"})
            cluster.service.superset_search({"dht"})  # cache hit
            cluster.service.publish("other.pdf", {"dht", "extra"})  # invalidation
            host, port = cluster.stats_endpoint
            with urlopen(f"http://{host}:{port}/metrics") as response:
                body = response.read().decode()
            assert lint_prometheus_text(body) == []
            assert "repro_cache_hits" in body
            assert "repro_cache_misses" in body
            assert "repro_cache_invalidations" in body
            with urlopen(f"http://{host}:{port}/metrics.json") as response:
                data = json.loads(response.read().decode())
            assert data["counters"]["cache.hits"] >= 1
            assert data["counters"]["cache.invalidate_rpcs"] >= 1


class TestCacheInvalidateTracing:
    def test_write_inside_trace_scope_emits_invalidate_event(self):
        service = make_service(cache_capacity=16)
        service.superset_search({"mp3"})  # fill a cache to invalidate
        recorder = TraceRecorder()
        with recording(recorder):
            service.publish("brand-new", {"mp3", "new"})
        trace = recorder.finish({})
        events = trace.events_of("cache_invalidate")
        assert events, "the write must trace its coherence sweep"
        detail = events[0].detail
        assert detail["op"] == "insert"
        assert detail["targets"] >= 1
        assert detail["invalidated"] >= 1

    def test_cacheless_write_emits_nothing(self):
        service = make_service()  # cache_capacity=0: coherence is a no-op
        recorder = TraceRecorder()
        with recording(recorder):
            service.publish("brand-new", {"mp3", "new"})
        trace = recorder.finish({})
        assert not trace.events_of("cache_invalidate")
        assert service.metrics_snapshot().counters.get("cache.invalidate_rpcs", 0) == 0
