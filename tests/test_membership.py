"""Dynamic membership: live join/leave/crash (:mod:`repro.membership`).

Three layers, three test groups.  The book is pure data: last-writer-
wins merges must converge whatever the delta order, and the on-disk
form must round-trip.  The cluster group drives churn through one
agent over a serve-all TCP transport: join hands tables to the new
owner, graceful leave evacuates first, a declared crash re-replicates
from the surviving index replica, and an *undeclared* crash must be
noticed by the failure detector from gossip misses alone.  The daemon
group runs one agent per process-shaped transport: books converge by
gossip, a killed daemon is declared dead by its peers, ``memb.leave``
evacuates and shuts the target down, a restarted daemon rejoins from
its persisted ``membership.json``, and the fleet client refreshes its
stale placement view instead of silently losing recall.
"""

import time

import pytest

from repro.core.config import ServiceConfig
from repro.core.service import KeywordSearchService
from repro.membership import MembershipPolicy, PeerBook, PeerRecord
from repro.net.cluster import LocalCluster
from repro.net.errors import PeerUnreachableError
from repro.net.node import NodeDaemon, cluster_addresses

CORPUS = [
    ("paper.pdf", {"dht", "search", "p2p"}),
    ("slides.ppt", {"dht", "search"}),
    ("notes.txt", {"p2p", "overlay"}),
    ("code.tar", {"dht", "overlay", "chord"}),
    ("data.csv", {"search"}),
    ("thesis.pdf", {"dht", "p2p", "overlay", "search"}),
]

# Fast knobs so detection fits in test time; thresholds unchanged in kind.
FAST = MembershipPolicy(gossip_interval=0.05, fanout=2, suspicion_threshold=3)


def publish_corpus(service) -> None:
    for object_id, keywords in CORPUS:
        service.publish(object_id, keywords)


def search_all(service, origin=None) -> dict:
    """Every corpus keyword set -> result tuple (the recall fingerprint)."""
    queries = sorted({frozenset(keywords) for _, keywords in CORPUS}, key=sorted)
    return {
        tuple(sorted(query)): tuple(sorted(service.superset_search(query, origin=origin).results()))
        for query in queries
    }


def client_search_all(client) -> dict:
    """:func:`search_all` through the unified client API — the path that
    carries the stale-view refresh-and-retry wrapper."""
    queries = sorted({frozenset(keywords) for _, keywords in CORPUS}, key=sorted)
    return {
        tuple(sorted(query)): tuple(sorted(client.search(query).results()))
        for query in queries
    }


def safe_victims(service) -> list[int]:
    """Addresses whose loss is fully repairable *and* non-trivial: every
    non-empty table they host (in any replica) has a surviving copy on a
    different address, and at least one such table exists.  With k=2
    replication a logical node whose two copies co-locate on one address
    is unrecoverable when that address dies — churn tests must not pick
    such a victim (that is a replication-factor fact, not a membership
    bug).  Empty tables are harmless to lose and do not disqualify.

    Must run against a service that holds every shard locally (the
    simulator or a serve-all cluster) — a daemon only fills its own
    shard.  Placement is seed-deterministic, so a simulator verdict
    transfers to any deployment of the same config."""
    victims = []
    for victim in service.dolr.addresses():
        safe, loaded = True, False
        for index in service.indexes:
            donors = [d for d in service.indexes if d is not index]
            for logical in index.mapping.logical_nodes_of(victim):
                rows = index.shard_at(victim).snapshot_records((index.namespace, logical))
                if not rows:
                    continue
                loaded = True
                if not donors or not any(
                    d.mapping.physical_owner(logical) != victim for d in donors
                ):
                    safe = False
        if safe and loaded:
            victims.append(victim)
    return victims


def shard_load(service, address) -> int:
    return sum(
        index.shard_at(address).load(namespace=index.namespace) for index in service.indexes
    )


def await_true(predicate, *, timeout: float = 20.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


# -- the book ---------------------------------------------------------------


class TestPeerRecord:
    def test_validates_status_and_epoch(self):
        with pytest.raises(ValueError, match="status"):
            PeerRecord(1, "zombie", 0)
        with pytest.raises(ValueError, match="epoch"):
            PeerRecord(1, "alive", -1)

    def test_member_statuses(self):
        assert PeerRecord(1, "alive", 0).member
        assert PeerRecord(1, "leaving", 0).member  # still serving mid-evacuation
        assert not PeerRecord(1, "left", 0).member
        assert not PeerRecord(1, "dead", 0).member

    def test_payload_round_trip(self):
        record = PeerRecord(7, "alive", 3, ("127.0.0.1", 9001))
        assert PeerRecord.from_payload(record.to_payload()) == record
        bare = PeerRecord(7, "dead", 9)
        assert PeerRecord.from_payload(bare.to_payload()) == bare


class TestPeerBook:
    def test_higher_epoch_wins(self):
        book = PeerBook()
        assert book.apply(PeerRecord(1, "dead", 2))
        assert not book.apply(PeerRecord(1, "alive", 1))  # stale alive loses
        assert book.get(1).status == "dead"
        assert book.apply(PeerRecord(1, "alive", 3))  # a fresh restart outranks
        assert book.get(1).status == "alive"

    def test_terminal_status_wins_ties(self):
        book = PeerBook()
        book.apply(PeerRecord(1, "alive", 5))
        assert book.apply(PeerRecord(1, "dead", 5))
        # ... and a same-epoch alive cannot resurrect it.
        assert not book.apply(PeerRecord(1, "alive", 5))
        assert book.get(1).status == "dead"

    def test_endpoint_is_sticky_metadata(self):
        book = PeerBook()
        book.apply(PeerRecord(1, "alive", 0, ("127.0.0.1", 9001)))
        # A status change without an endpoint keeps the known one.
        book.apply(PeerRecord(1, "leaving", 1))
        assert book.get(1).endpoint == ("127.0.0.1", 9001)
        # An endpoint-carrying record beats an endpoint-less tie.
        book.apply(PeerRecord(2, "alive", 0))
        assert book.apply(PeerRecord(2, "alive", 0, ("127.0.0.1", 9002)))

    def test_merge_is_order_independent(self):
        deltas = [
            PeerRecord(1, "alive", 1, ("127.0.0.1", 9001)),
            PeerRecord(2, "alive", 2, ("127.0.0.1", 9002)),
            PeerRecord(1, "leaving", 3),
            PeerRecord(1, "left", 4),
            PeerRecord(3, "alive", 5, ("127.0.0.1", 9003)),
            PeerRecord(2, "dead", 6),
        ]
        forward, backward = PeerBook(), PeerBook()
        forward.merge(deltas)
        backward.merge(reversed(deltas))
        # Status and epoch converge whatever the order (that is what the
        # digest covers); the endpoint is advisory metadata outside the
        # convergence contract.
        assert forward.digest() == backward.digest()
        assert forward.members() == backward.members() == [3]
        for address in forward.records:
            fwd, bwd = forward.get(address), backward.get(address)
            assert (fwd.status, fwd.epoch) == (bwd.status, bwd.epoch)

    def test_delta_since_ships_only_news(self):
        book = PeerBook()
        book.merge([PeerRecord(1, "alive", 1), PeerRecord(2, "alive", 4)])
        assert [r.address for r in book.delta_since(1)] == [2]
        assert len(book.delta_since(-1)) == 2  # the whole book
        assert book.delta_since(book.epoch) == []

    def test_digest_tracks_content(self):
        a, b = PeerBook(), PeerBook()
        a.apply(PeerRecord(1, "alive", 1))
        b.apply(PeerRecord(1, "dead", 1))
        assert a.digest() != b.digest()
        b.apply(PeerRecord(1, "alive", 2))
        a.apply(PeerRecord(1, "alive", 2))
        assert a.digest() == b.digest()

    def test_save_load_round_trip(self, tmp_path):
        book = PeerBook()
        book.merge(
            [
                PeerRecord(1, "alive", 1, ("127.0.0.1", 9001)),
                PeerRecord(2, "left", 2, ("127.0.0.1", 9002)),
            ]
        )
        path = tmp_path / "membership.json"
        book.save(path, extra={"address": 1, "port": 9001})
        loaded, metadata = PeerBook.load(path)
        assert loaded.records == book.records
        assert metadata == {"address": 1, "port": 9001}


class TestMembershipPolicy:
    def test_validates_knobs(self):
        with pytest.raises(ValueError, match="gossip_interval"):
            MembershipPolicy(gossip_interval=0)
        with pytest.raises(ValueError, match="fanout"):
            MembershipPolicy(fanout=0)
        with pytest.raises(ValueError, match="suspicion_threshold"):
            MembershipPolicy(suspicion_threshold=0)


# -- churn on a serve-all cluster -------------------------------------------

CLUSTER_CONFIG = ServiceConfig(dimension=6, num_dht_nodes=8, seed=11)
REPLICATED_CONFIG = ServiceConfig(dimension=6, num_dht_nodes=8, seed=11, index_replicas=2)


class TestClusterChurn:
    def test_membership_off_by_default(self):
        with LocalCluster(CLUSTER_CONFIG) as cluster:
            assert cluster.membership is None
            with pytest.raises(RuntimeError, match="membership"):
                cluster.join_node(123)

    def test_join_hands_over_ownership(self):
        with LocalCluster(CLUSTER_CONFIG, membership=True) as cluster:
            publish_corpus(cluster.service)
            before = search_all(cluster.service)
            addresses = cluster.addresses()
            # Join just below the most loaded node: chord ownership is
            # successor-based, so the joiner captures nearly all of that
            # node's arc — a handover with actual tables in it.
            target = max(addresses, key=lambda a: shard_load(cluster.service, a))
            joiner = target - 1
            assert joiner not in addresses
            moved = cluster.join_node(joiner)
            assert joiner in cluster.addresses()
            assert joiner in cluster.endpoints  # its server is really bound
            assert moved > 0  # tables crossed to the new owner
            assert search_all(cluster.service) == before
            assert cluster.membership.book.get(joiner).status == "alive"

    def test_graceful_leave_evacuates_first(self):
        with LocalCluster(CLUSTER_CONFIG, membership=True) as cluster:
            publish_corpus(cluster.service)
            before = search_all(cluster.service)
            total = cluster.service.index.total_indexed()
            victim = max(cluster.addresses(), key=lambda a: shard_load(cluster.service, a))
            assert shard_load(cluster.service, victim) > 0
            moved = cluster.leave_node(victim)
            assert moved > 0
            assert victim not in cluster.addresses()
            assert cluster.service.index.total_indexed() == total  # nothing lost
            assert search_all(cluster.service) == before
            assert cluster.membership.book.get(victim).status == "left"

    def test_declared_crash_repairs_from_replica(self):
        with LocalCluster(REPLICATED_CONFIG, membership=True) as cluster:
            publish_corpus(cluster.service)
            before = search_all(cluster.service)
            candidates = safe_victims(cluster.service)
            assert candidates, "seed must admit a loaded, fully-repairable victim"
            victim = max(candidates, key=lambda v: shard_load(cluster.service, v))
            restored = cluster.declare_crashed(victim)
            assert restored > 0  # re-replicated from the secondary hypercube
            assert victim not in cluster.addresses()
            assert search_all(cluster.service) == before  # full recall, no dip
            metrics = cluster.transport.metrics
            assert metrics.counter("memb.deaths_declared") == 1
            assert metrics.counter("memb.repaired_refs") == restored

    def test_repair_republication_invalidates_surviving_caches(self):
        # Churn coherence (docs/protocol.md §16): folding a dead node's
        # tables into their new owner is a write like any other — the
        # repair must fan invalidations up to the surviving superset
        # roots, and every post-repair query (cached or not) must match
        # the pre-crash answers, including after a post-repair write.
        cached = ServiceConfig(
            dimension=6, num_dht_nodes=8, seed=11, index_replicas=2, cache_capacity=8
        )
        with LocalCluster(cached, membership=True) as cluster:
            publish_corpus(cluster.service)
            before = search_all(cluster.service)  # primes the query caches
            candidates = safe_victims(cluster.service)
            assert candidates, "seed must admit a loaded, fully-repairable victim"
            victim = max(candidates, key=lambda v: shard_load(cluster.service, v))
            restored = cluster.declare_crashed(victim)
            assert restored > 0
            metrics = cluster.transport.metrics
            # The repair's re-publication reached superset roots.
            assert metrics.counter("cache.invalidate_rpcs") > 0
            assert search_all(cluster.service) == before  # no stale entry served
            # And coherence still holds through the repaired tables.
            holder = cluster.service.dolr.any_address()
            cluster.service.publish("post-repair.bin", {"dht", "search"}, holder=holder)
            found = cluster.service.superset_search({"dht", "search"}).results()
            assert "post-repair.bin" in found
            cluster.service.unpublish("post-repair.bin", holder=holder)
            gone = cluster.service.superset_search({"dht", "search"}).results()
            assert "post-repair.bin" not in gone

    def test_undeclared_crash_is_detected(self):
        with LocalCluster(REPLICATED_CONFIG, membership=FAST) as cluster:
            publish_corpus(cluster.service)
            before = search_all(cluster.service)
            candidates = safe_victims(cluster.service)
            victim = max(candidates, key=lambda v: shard_load(cluster.service, v))
            cluster.crash_node(victim)  # server stops dead; nobody is told
            assert cluster.await_membership(
                lambda book: (record := book.get(victim)) is not None
                and record.status == "dead",
                timeout=20.0,
            ), "failure detector never declared the crashed node dead"
            assert victim not in cluster.addresses()
            assert search_all(cluster.service) == before
            metrics = cluster.transport.metrics
            assert metrics.counter("memb.heartbeat_misses") >= FAST.suspicion_threshold
            assert metrics.counter("memb.deaths_declared") >= 1

    def test_gossiped_death_of_self_is_refuted(self):
        # A partition-confused peer declares *us* dead: the process that
        # serves the address is the living counter-evidence and must
        # outrank the record rather than expel itself.
        with LocalCluster(CLUSTER_CONFIG, membership=True) as cluster:
            agent = cluster.membership
            target = cluster.addresses()[0]
            dead = PeerRecord(target, "dead", agent.book.next_epoch())
            agent._on_gossip(
                cluster.addresses()[-1],
                {"digest": [dead.epoch, 0], "delta": [dead.to_payload()]},
            )
            record = agent.book.get(target)
            assert record.status == "alive"
            assert record.epoch > dead.epoch  # the refutation outranks the claim
            assert target in cluster.addresses()  # never expelled itself
            assert cluster.transport.metrics.counter("memb.false_deaths_refuted") == 1


# -- one agent per process: daemon fleets -----------------------------------

DAEMON_CONFIG = ServiceConfig(dimension=6, num_dht_nodes=4, seed=7)
DAEMON_REPLICATED = ServiceConfig(dimension=6, num_dht_nodes=4, seed=7, index_replicas=2)


def boot_fleet(config, **daemon_kwargs):
    """Start one daemon per derived address, each seeded only with the
    first daemon's endpoint — gossip must spread the rest."""
    addresses = cluster_addresses(config)
    daemons: dict[int, NodeDaemon] = {}
    for address in addresses:
        seeds = (
            {addresses[0]: daemons[addresses[0]].endpoint} if daemons else {}
        )
        daemons[address] = NodeDaemon(
            config, address, peers=seeds, membership=FAST, **daemon_kwargs
        )
    return addresses, daemons


def books_converged(daemons) -> bool:
    live = [d for d in daemons.values() if d.membership is not None]
    digests = {d.membership.book.digest() for d in live}
    if len(digests) != 1:
        return False
    return all(len(d.membership.book.endpoints()) == len(live) for d in live)


def close_all(daemons) -> None:
    for daemon in daemons.values():
        daemon.close()


class TestDaemonFleet:
    def test_gossip_converges_books_and_endpoints(self):
        addresses, daemons = boot_fleet(DAEMON_CONFIG)
        try:
            assert await_true(lambda: books_converged(daemons))
            # Endpoints learned by gossip landed in every peer table, so
            # cross-daemon protocol traffic works without manual wiring.
            publisher, searcher = addresses[1], addresses[-1]
            publish_corpus_at = daemons[publisher].service
            for object_id, keywords in CORPUS:
                publish_corpus_at.publish(object_id, keywords, holder=publisher)
            expected = search_all(
                daemons[publisher].service, origin=publisher
            )
            assert search_all(daemons[searcher].service, origin=searcher) == expected
        finally:
            close_all(daemons)

    def test_killed_daemon_is_declared_dead_and_repaired(self):
        # Placement is seed-deterministic, so a simulator of the same
        # config tells us which daemon is safe to kill (every shard is
        # local there; a daemon only fills its own).
        reference = KeywordSearchService.create(DAEMON_REPLICATED)
        publish_corpus(reference)
        candidates = safe_victims(reference)
        assert candidates, "seed must admit a fully-repairable victim"
        victim = candidates[0]

        addresses, daemons = boot_fleet(DAEMON_REPLICATED)
        try:
            assert await_true(lambda: books_converged(daemons))
            publisher = next(a for a in addresses if a != victim)
            for object_id, keywords in CORPUS:
                daemons[publisher].service.publish(object_id, keywords, holder=publisher)
            before = search_all(daemons[publisher].service, origin=publisher)
            daemons[victim].close()  # fail-stop: no leave, no announcement
            survivors = [a for a in addresses if a != victim]
            assert await_true(
                lambda: all(
                    (record := daemons[a].membership.book.get(victim)) is not None
                    and record.status == "dead"
                    and victim not in daemons[a].service.dolr.nodes
                    for a in survivors
                )
            ), "survivors never converged on the death"
            origin = survivors[0]
            assert search_all(daemons[origin].service, origin=origin) == before
        finally:
            close_all(daemons)

    def test_memb_leave_rpc_evacuates_and_shuts_down(self):
        addresses, daemons = boot_fleet(DAEMON_CONFIG)
        try:
            assert await_true(lambda: books_converged(daemons))
            publisher = addresses[0]
            for object_id, keywords in CORPUS:
                daemons[publisher].service.publish(object_id, keywords, holder=publisher)
            before = search_all(daemons[publisher].service, origin=publisher)
            victim = max(
                addresses[1:],
                key=lambda a: daemons[publisher]
                .service.index.shard_at(a)
                .load(namespace=daemons[publisher].service.index.namespace),
            )
            # Any daemon can address the target's memb.leave endpoint —
            # this is what `repro node leave` sends.
            caller = next(a for a in addresses if a != victim)
            reply = daemons[caller].transport.rpc(caller, victim, "memb.leave", {})
            assert reply["moved"] > 0
            assert daemons[victim].shutdown_requested  # on_leave hook fired
            daemons[victim].close()
            survivors = [a for a in addresses if a != victim]
            assert await_true(
                lambda: all(
                    (record := daemons[a].membership.book.get(victim)) is not None
                    and record.status == "left"
                    and victim not in daemons[a].service.dolr.nodes
                    for a in survivors
                )
            ), "survivors never applied the graceful leave"
            origin = survivors[0]
            assert search_all(daemons[origin].service, origin=origin) == before
        finally:
            close_all(daemons)

    def test_restart_rejoins_from_persisted_book(self, tmp_path):
        addresses = cluster_addresses(DAEMON_CONFIG)
        durable = addresses[0]
        daemons = {
            durable: NodeDaemon(
                DAEMON_CONFIG, durable, membership=FAST, data_dir=tmp_path
            )
        }
        for address in addresses[1:]:
            daemons[address] = NodeDaemon(
                DAEMON_CONFIG,
                address,
                peers={durable: daemons[durable].endpoint},
                membership=FAST,
            )
        try:
            assert await_true(lambda: books_converged(daemons))
            publisher = addresses[1]
            for object_id, keywords in CORPUS:
                daemons[publisher].service.publish(object_id, keywords, holder=publisher)
            before = search_all(daemons[publisher].service, origin=publisher)
            saved_port = daemons[durable].endpoint[1]
            daemons[durable].close()
            assert (tmp_path / "membership.json").exists()

            # Restart with NO peer list: the saved book supplies the
            # endpoints, the saved port is re-bound, the WAL replays the
            # shard, and announce() re-asserts aliveness over any "dead"
            # the survivors' detectors may have declared meanwhile.
            daemons[durable] = NodeDaemon(
                DAEMON_CONFIG, durable, membership=FAST, data_dir=tmp_path
            )
            assert daemons[durable].endpoint[1] == saved_port
            assert set(daemons[durable].transport.peers) == set(addresses) - {durable}
            assert await_true(
                lambda: all(
                    (record := daemons[a].membership.book.get(durable)) is not None
                    and record.status == "alive"
                    and durable in daemons[a].service.dolr.nodes
                    for a in addresses
                )
            ), "fleet never re-converged on the restarted daemon"
            assert search_all(daemons[durable].service, origin=durable) == before
        finally:
            close_all(daemons)

    def test_left_daemon_refuses_to_rejoin(self, tmp_path):
        addresses = cluster_addresses(DAEMON_CONFIG)
        book = PeerBook()
        for address in addresses:
            book.apply(PeerRecord(address, "alive", 1, ("127.0.0.1", 1 + address % 1000)))
        book.apply(PeerRecord(addresses[0], "left", 2))
        book.save(tmp_path / "membership.json", extra={"address": addresses[0], "port": 0})
        with pytest.raises(ValueError, match="already left"):
            NodeDaemon(DAEMON_CONFIG, addresses[0], membership=FAST, data_dir=tmp_path)

    def test_join_requires_membership(self):
        with pytest.raises(ValueError, match="join=True requires membership"):
            NodeDaemon(DAEMON_CONFIG, 123, join=True)


class TestFleetClientRefresh:
    def test_refresh_after_join_restores_recall(self):
        from repro.client import connect

        addresses, daemons = boot_fleet(DAEMON_CONFIG)
        joiner = None
        client = None
        try:
            assert await_true(lambda: books_converged(daemons))
            endpoints = {a: daemons[a].endpoint for a in addresses}
            client = connect(DAEMON_CONFIG, peers=endpoints)
            publish_corpus(client.service)
            before = search_all(client.service)
            width, start = max((b - a, a) for a, b in zip(addresses, addresses[1:]))
            new_address = start + width // 2
            joiner = NodeDaemon(
                DAEMON_CONFIG,
                new_address,
                peers={addresses[0]: daemons[addresses[0]].endpoint},
                membership=FAST,
                join=True,
            )
            assert await_true(
                lambda: all(
                    new_address in daemons[a].service.dolr.nodes for a in addresses
                )
            ), "fleet never admitted the joiner"
            # The client's derived view predates the join: tables moved to
            # the new owner are invisible to it (the stale owner answers
            # scans with empty tables — no error to retry on).  One
            # explicit refresh re-derives placement from the live book.
            assert client.refresh_membership()
            assert new_address in client.service.dolr.nodes
            assert search_all(client.service) == before
            assert client.transport.metrics.counter("client.membership_refreshes") >= 1
        finally:
            if client is not None:
                client.close()
            if joiner is not None:
                joiner.close()
            close_all(daemons)

    def test_crash_with_replicas_degrades_seamlessly(self):
        from repro.client import connect

        reference = KeywordSearchService.create(DAEMON_REPLICATED)
        publish_corpus(reference)
        victim = safe_victims(reference)[0]

        addresses, daemons = boot_fleet(DAEMON_REPLICATED)
        client = None
        try:
            assert await_true(lambda: books_converged(daemons))
            endpoints = {a: daemons[a].endpoint for a in addresses}
            client = connect(DAEMON_REPLICATED, peers=endpoints)
            publish_corpus(client.service)
            before = client_search_all(client)
            daemons[victim].close()  # fail-stop
            survivors = [a for a in addresses if a != victim]
            assert await_true(
                lambda: all(
                    (record := daemons[a].membership.book.get(victim)) is not None
                    and record.status == "dead"
                    for a in survivors
                )
            ), "survivors never converged on the death"
            # The stale client still maps tables to the dead daemon, but
            # the replicated searcher falls back to the surviving replica
            # scan: full recall, no error surfaces, so the retry wrapper
            # never even fires.
            assert client_search_all(client) == before
            assert client.transport.metrics.counter("client.membership_refreshes") == 0
        finally:
            if client is not None:
                client.close()
            close_all(daemons)

    def test_crash_triggers_automatic_refresh_and_retry(self):
        from repro.client import connect

        # Unreplicated, so there is no replica to degrade onto: the
        # stale client hits the dead daemon loudly and must recover by
        # refreshing its view, not by masking the loss.
        reference = KeywordSearchService.create(DAEMON_CONFIG)
        publish_corpus(reference)
        victim = max(reference.dolr.addresses(), key=lambda a: shard_load(reference, a))

        addresses, daemons = boot_fleet(DAEMON_CONFIG)
        client = None
        try:
            assert await_true(lambda: books_converged(daemons))
            endpoints = {a: daemons[a].endpoint for a in addresses}
            client = connect(DAEMON_CONFIG, peers=endpoints)
            publish_corpus(client.service)
            daemons[victim].close()  # fail-stop
            survivors = [a for a in addresses if a != victim]
            assert await_true(
                lambda: all(
                    (record := daemons[a].membership.book.get(victim)) is not None
                    and record.status == "dead"
                    and victim not in daemons[a].service.dolr.nodes
                    for a in survivors
                )
            ), "survivors never converged on the death"
            # The first search routed at the dead daemon raises
            # PeerUnreachableError inside the wrapper, which refreshes
            # from a survivor and retries — the caller sees no error and
            # exactly the survivors' (post-loss) view of the corpus.
            after = client_search_all(client)
            metrics = client.transport.metrics
            assert metrics.counter("client.membership_refreshes") >= 1
            assert metrics.counter("client.membership_retries") >= 1
            origin = survivors[0]
            assert after == search_all(daemons[origin].service, origin=origin)
        finally:
            if client is not None:
                client.close()
            close_all(daemons)

    def test_unreachable_without_membership_still_raises(self):
        from repro.client import connect

        # A fleet client pointed at daemons with membership OFF must not
        # mask the error behind a refresh that cannot succeed.
        config = DAEMON_CONFIG
        addresses = cluster_addresses(config)
        daemons = {a: NodeDaemon(config, a) for a in addresses}
        client = None
        try:
            for address, daemon in daemons.items():
                for other, peer in daemons.items():
                    if other != address:
                        daemon.transport.peers[other] = peer.endpoint
            endpoints = {a: daemons[a].endpoint for a in addresses}
            client = connect(config, peers=endpoints, rpc_timeout=3.0)
            publish_corpus(client.service)
            daemons[addresses[0]].close()
            with pytest.raises(PeerUnreachableError):
                for _ in range(8):  # some query must route via the dead node
                    search_all(client.service)
        finally:
            if client is not None:
                client.close()
            close_all(daemons)
