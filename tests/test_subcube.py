"""Unit tests for induced subhypercubes (Definition 3.1, Lemmas 3.1/3.3)."""

import math

import pytest

from repro.hypercube.hypercube import Hypercube
from repro.hypercube.subcube import SubHypercube


class TestMembership:
    def test_members_contain_inducer(self):
        cube = Hypercube(5)
        sub = SubHypercube(cube, 0b10010)
        for node in sub.nodes():
            assert cube.contains_node(node, 0b10010)

    def test_exactly_the_containing_nodes(self):
        cube = Hypercube(4)
        sub = SubHypercube(cube, 0b0100)
        expected = {n for n in cube.nodes() if n & 0b0100 == 0b0100}
        assert set(sub.nodes()) == expected

    def test_contains_dunder(self):
        sub = SubHypercube(Hypercube(4), 0b0100)
        assert 0b0110 in sub
        assert 0b0010 not in sub
        assert 99 not in sub

    def test_size_and_dimension(self):
        # Figure 3: H_4(0100) is isomorphic to H_3.
        sub = SubHypercube(Hypercube(4), 0b0100)
        assert sub.dimension == 3
        assert sub.size == 8

    def test_full_cube_when_inducer_zero(self):
        sub = SubHypercube(Hypercube(4), 0)
        assert sub.size == 16

    def test_single_node_when_inducer_full(self):
        sub = SubHypercube(Hypercube(4), 0b1111)
        assert list(sub.nodes()) == [0b1111]


class TestDepth:
    def test_depth_counts_extra_bits(self):
        sub = SubHypercube(Hypercube(4), 0b0100)
        assert sub.depth_of(0b0100) == 0
        assert sub.depth_of(0b1100) == 1
        assert sub.depth_of(0b1111) == 3

    def test_depth_of_outsider_rejected(self):
        with pytest.raises(ValueError):
            SubHypercube(Hypercube(4), 0b0100).depth_of(0b0010)

    def test_nodes_at_depth_sizes(self):
        sub = SubHypercube(Hypercube(6), 0b000011)
        for depth in range(sub.dimension + 1):
            level = list(sub.nodes_at_depth(depth))
            assert len(level) == math.comb(sub.dimension, depth)
            assert all(sub.depth_of(node) == depth for node in level)

    def test_nodes_at_depth_partition(self):
        sub = SubHypercube(Hypercube(5), 0b00100)
        by_levels = [n for d in range(sub.dimension + 1) for n in sub.nodes_at_depth(d)]
        assert sorted(by_levels) == sorted(sub.nodes())

    def test_nodes_at_depth_invalid(self):
        with pytest.raises(ValueError):
            list(SubHypercube(Hypercube(4), 0b0100).nodes_at_depth(4))


class TestLemma33:
    def test_refinement_shrinks_space(self):
        # K1 ⊆ K2 ⇒ H_r(F(K2)) ⊆ H_r(F(K1)); at the bit level:
        # u1 ⊆ u2 (as bit sets) ⇒ subcube(u2) ⊆ subcube(u1).
        cube = Hypercube(6)
        broad = SubHypercube(cube, 0b000100)
        narrow = SubHypercube(cube, 0b010100)
        assert narrow.is_subcube_of(broad)
        assert not broad.is_subcube_of(narrow)
        assert set(narrow.nodes()) <= set(broad.nodes())

    def test_not_subcube_across_dimensions(self):
        a = SubHypercube(Hypercube(4), 0b0100)
        b = SubHypercube(Hypercube(5), 0b00100)
        assert not a.is_subcube_of(b)

    def test_reflexive(self):
        sub = SubHypercube(Hypercube(4), 0b1010)
        assert sub.is_subcube_of(sub)


class TestCompactIsomorphism:
    def test_round_trip(self):
        sub = SubHypercube(Hypercube(6), 0b010010)
        for node in sub.nodes():
            assert sub.expand(sub.compact(node)) == node

    def test_compact_covers_small_cube(self):
        sub = SubHypercube(Hypercube(5), 0b00101)
        compacts = sorted(sub.compact(n) for n in sub.nodes())
        assert compacts == list(range(sub.size))

    def test_compact_preserves_adjacency(self):
        # Definition 3.1's isomorphism claim: edges map to edges.
        cube = Hypercube(5)
        sub = SubHypercube(cube, 0b00100)
        for node in sub.nodes():
            for dim in sub.free_dimensions:
                neighbor = node ^ (1 << dim)
                delta = sub.compact(node) ^ sub.compact(neighbor)
                assert bin(delta).count("1") == 1

    def test_compact_outsider_rejected(self):
        with pytest.raises(ValueError):
            SubHypercube(Hypercube(4), 0b0100).compact(0b0010)

    def test_expand_out_of_range(self):
        with pytest.raises(ValueError):
            SubHypercube(Hypercube(4), 0b0100).expand(8)
