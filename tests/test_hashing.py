"""Unit tests for repro.util.hashing."""

import pytest

from repro.util.hashing import derive_hash_family, stable_hash, stable_hash_to_range


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("chord") == stable_hash("chord")

    def test_accepts_bytes(self):
        assert stable_hash(b"chord") == stable_hash("chord")

    def test_salts_differ(self):
        assert stable_hash("x", salt="a") != stable_hash("x", salt="b")

    def test_salt_is_not_prefix_concatenation(self):
        # ("ab", "c") and ("a", "bc") must hash differently.
        assert stable_hash("c", salt="ab") != stable_hash("bc", salt="a")

    def test_bits_bound_output(self):
        for bits in (1, 8, 17, 64, 160):
            assert 0 <= stable_hash("value", bits=bits) < (1 << bits)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            stable_hash("x", bits=0)
        with pytest.raises(ValueError):
            stable_hash("x", bits=161)

    def test_spread(self):
        # 1000 distinct inputs into 64 bits should not collide.
        values = {stable_hash(f"key-{i}") for i in range(1000)}
        assert len(values) == 1000


class TestStableHashToRange:
    def test_in_range(self):
        for modulus in (1, 2, 7, 1000):
            assert 0 <= stable_hash_to_range("x", modulus) < modulus

    def test_deterministic(self):
        assert stable_hash_to_range("y", 97) == stable_hash_to_range("y", 97)

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            stable_hash_to_range("x", 0)

    def test_roughly_uniform(self):
        buckets = [0] * 10
        for i in range(5000):
            buckets[stable_hash_to_range(f"item-{i}", 10)] += 1
        assert min(buckets) > 350  # expectation 500, very loose bound
        assert max(buckets) < 650


class TestHashFamily:
    def test_count(self):
        assert len(derive_hash_family("base", 5)) == 5

    def test_distinct(self):
        family = derive_hash_family("base", 10)
        assert len(set(family)) == 10

    def test_independent_streams(self):
        s1, s2 = derive_hash_family("base", 2)
        assert stable_hash("kw", salt=s1) != stable_hash("kw", salt=s2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            derive_hash_family("base", -1)
