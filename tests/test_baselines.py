"""Tests for the baseline schemes: direct hashing, DII, KSS."""

import math

import pytest

from repro.baselines.dii import DiiPlacement, DistributedInvertedIndex
from repro.baselines.direct import DirectHashPlacement
from repro.baselines.kss import KeywordSetIndex, KssPlacement
from repro.dht.chord import ChordNetwork

from tests.conftest import CATALOGUE


class TestDirectHashPlacement:
    def test_node_in_range(self):
        placement = DirectHashPlacement(6)
        for i in range(50):
            assert 0 <= placement.node_for(f"obj-{i}") < 64

    def test_deterministic(self):
        placement = DirectHashPlacement(8)
        assert placement.node_for("x") == placement.node_for("x")

    def test_load_totals(self):
        placement = DirectHashPlacement(4)
        ids = [f"obj-{i}" for i in range(100)]
        loads = placement.load_by_node(ids)
        assert sum(loads.values()) == 100
        assert set(loads) == set(range(16))

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            DirectHashPlacement(0)


class TestDiiPlacement:
    def test_load_counts_one_per_keyword(self):
        placement = DiiPlacement(6)
        loads = placement.load_by_node(CATALOGUE.values())
        assert sum(loads.values()) == sum(len(k) for k in CATALOGUE.values())

    def test_storage_per_object_is_mean_set_size(self):
        placement = DiiPlacement(6)
        expected = sum(len(k) for k in CATALOGUE.values()) / len(CATALOGUE)
        assert placement.storage_per_object(CATALOGUE.values()) == pytest.approx(expected)

    def test_same_keyword_same_node(self):
        placement = DiiPlacement(8)
        assert placement.node_for("Jazz ") == placement.node_for("jazz")


class TestDiiNetwork:
    @pytest.fixture()
    def dii(self):
        dolr = ChordNetwork.build(bits=16, num_nodes=16, seed=41)
        dii = DistributedInvertedIndex(dolr)
        holder = dolr.any_address()
        for object_id, keywords in CATALOGUE.items():
            dii.insert(object_id, keywords, holder)
        return dii

    def test_insert_costs_k_postings(self):
        dolr = ChordNetwork.build(bits=16, num_nodes=16, seed=42)
        dii = DistributedInvertedIndex(dolr)
        posted = dii.insert("obj", {"a", "b", "c"}, dolr.any_address())
        assert posted == 3

    def test_single_keyword_query(self, dii):
        result = dii.query({"jazz"})
        expected = {o for o, kw in CATALOGUE.items() if "jazz" in kw}
        assert set(result.object_ids) == expected
        assert result.nodes_contacted == 1

    def test_intersection_query(self, dii):
        result = dii.query({"mp3", "piano"})
        expected = {o for o, kw in CATALOGUE.items() if {"mp3", "piano"} <= kw}
        assert set(result.object_ids) == expected
        assert result.nodes_contacted == 2

    def test_postings_shipped_counts_both_lists(self, dii):
        result = dii.query({"mp3", "jazz"})
        mp3 = sum(1 for kw in CATALOGUE.values() if "mp3" in kw)
        jazz = sum(1 for kw in CATALOGUE.values() if "jazz" in kw)
        assert result.postings_shipped == mp3 + jazz

    def test_delete(self, dii):
        holder = dii.dolr.any_address()
        dii.delete("take-five", CATALOGUE["take-five"], holder)
        assert "take-five" not in dii.query({"jazz"}).object_ids

    def test_replica_bookkeeping(self, dii):
        holders = dii.dolr.addresses()
        assert dii.insert("take-five", CATALOGUE["take-five"], holders[-1]) == 0
        assert dii.delete("take-five", CATALOGUE["take-five"], holders[0]) == 0
        # Still queryable: one replica remains.
        assert "take-five" in dii.query({"jazz"}).object_ids

    def test_keyword_owner_failure_blocks_query(self, dii):
        owner = dii.owner_of("jazz")
        dii.dolr.network.fail(owner)
        origin = next(a for a in dii.dolr.addresses() if a != owner)
        # The lookup surrogates to a live node whose posting list is
        # empty — every object under 'jazz' is lost at once.
        result = dii.query({"jazz"}, origin=origin)
        assert result.object_ids == ()

    def test_bulk_load_equals_protocol_load(self):
        protocol = DistributedInvertedIndex(
            ChordNetwork.build(bits=16, num_nodes=16, seed=43)
        )
        holder = protocol.dolr.any_address()
        for object_id, keywords in CATALOGUE.items():
            protocol.insert(object_id, keywords, holder)
        bulk = DistributedInvertedIndex(
            ChordNetwork.build(bits=16, num_nodes=16, seed=43)
        )
        bulk.bulk_load(CATALOGUE.items())
        for keyword in {k for kw in CATALOGUE.values() for k in kw}:
            assert bulk.query({keyword}).object_ids == protocol.query({keyword}).object_ids


class TestKssPlacement:
    def test_entries_per_object(self):
        placement = KssPlacement(6, window=2)
        assert placement.entries_per_object(4) == math.comb(4, 1) + math.comb(4, 2)

    def test_entries_with_small_sets(self):
        placement = KssPlacement(6, window=3)
        assert placement.entries_per_object(2) == 3  # C(2,1) + C(2,2)

    def test_load_by_node_totals(self):
        placement = KssPlacement(5, window=2)
        loads = placement.load_by_node(CATALOGUE.values())
        expected = sum(
            placement.entries_per_object(len(k)) for k in CATALOGUE.values()
        )
        assert sum(loads.values()) == expected

    def test_storage_blowup_exceeds_dii(self):
        kss = KssPlacement(6, window=2)
        dii = DiiPlacement(6)
        assert kss.storage_per_object(CATALOGUE.values()) > dii.storage_per_object(
            CATALOGUE.values()
        )


class TestKssNetwork:
    @pytest.fixture()
    def kss(self):
        dolr = ChordNetwork.build(bits=16, num_nodes=16, seed=44)
        kss = KeywordSetIndex(dolr, window=2)
        holder = dolr.any_address()
        for object_id, keywords in CATALOGUE.items():
            kss.insert(object_id, keywords, holder)
        return kss

    def test_within_window_query_single_lookup(self, kss):
        result = kss.query({"mp3", "jazz"})
        expected = {o for o, kw in CATALOGUE.items() if {"mp3", "jazz"} <= kw}
        assert set(result.object_ids) == expected
        assert result.nodes_contacted == 1

    def test_singleton_query(self, kss):
        result = kss.query({"piano"})
        expected = {o for o, kw in CATALOGUE.items() if "piano" in kw}
        assert set(result.object_ids) == expected

    def test_over_window_query_filters_candidates(self, kss):
        result = kss.query({"mp3", "jazz", "piano"})
        expected = {o for o, kw in CATALOGUE.items() if {"mp3", "jazz", "piano"} <= kw}
        assert set(result.object_ids) == expected
        assert result.candidates >= len(result.object_ids)

    def test_insert_posts_window_subsets(self):
        dolr = ChordNetwork.build(bits=16, num_nodes=16, seed=45)
        kss = KeywordSetIndex(dolr, window=2)
        posted = kss.insert("obj", {"a", "b", "c"}, dolr.any_address())
        assert posted == 6  # C(3,1) + C(3,2)

    def test_delete(self, kss):
        holder = kss.dolr.any_address()
        kss.delete("blue-in-green", CATALOGUE["blue-in-green"], holder)
        assert "blue-in-green" not in kss.query({"piano"}).object_ids

    def test_invalid_window(self):
        dolr = ChordNetwork.build(bits=16, num_nodes=4, seed=46)
        with pytest.raises(ValueError):
            KeywordSetIndex(dolr, window=0)
