"""Tests for the command-line interface."""

import inspect

import pytest

from repro.cli import EXPERIMENTS, build_parser, coerce_value, main


def _parameter(name="p", default=inspect.Parameter.empty):
    return inspect.Parameter(
        name, inspect.Parameter.KEYWORD_ONLY, default=default
    )


class TestCoercion:
    def test_int(self):
        assert coerce_value("42", _parameter(default=7)) == 42

    def test_float(self):
        assert coerce_value("0.5", _parameter(default=1.0)) == 0.5

    def test_bool(self):
        assert coerce_value("true", _parameter(default=False)) is True
        assert coerce_value("0", _parameter(default=True)) is False
        with pytest.raises(ValueError):
            coerce_value("maybe", _parameter(default=True))

    def test_string(self):
        assert coerce_value("fifo", _parameter(default="lru")) == "fifo"

    def test_tuple_from_commas(self):
        assert coerce_value("6,10,14", _parameter(default=(1,))) == (6, 10, 14)

    def test_tuple_of_floats(self):
        assert coerce_value("0.0,0.5,1.0", _parameter(default=(0.1,))) == (0.0, 0.5, 1.0)

    def test_single_value_for_tuple_default(self):
        assert coerce_value("8", _parameter(default=(1, 2))) == (8,)

    def test_untyped_scalar(self):
        assert coerce_value("12", _parameter(default=None)) == 12


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_run_with_options(self, capsys):
        code = main(["run", "eq1", "--dimensions", "8", "--set-sizes", "1,2", "--trials", "500"])
        assert code == 0
        output = capsys.readouterr().out
        assert "eq1" in output
        assert "expected_one_eq2" in output

    def test_run_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "result.txt"
        main(
            [
                "run", "table1",
                "--output", str(target),
                "--num-objects", "300",
                "--synthetic-samples", "1",
            ]
        )
        capsys.readouterr()
        assert "table1" in target.read_text()

    def test_unknown_option_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "eq1", "--bogus", "1"])

    def test_missing_value_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "eq1", "--trials"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_every_experiment_registered(self):
        import importlib

        for name in EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert callable(module.run)
