"""Tests for the superset-search protocol (T_QUERY and variants)."""

import pytest

from repro.core.index import HypercubeIndex
from repro.core.search import SuperSetSearch, TraversalOrder
from repro.hypercube.hypercube import Hypercube
from repro.hypercube.subcube import SubHypercube

from tests.conftest import CATALOGUE


@pytest.fixture()
def searcher(loaded_index):
    return SuperSetSearch(loaded_index)


def oracle(query: set) -> set:
    return {oid for oid, kw in CATALOGUE.items() if frozenset(query) <= kw}


class TestCorrectness:
    @pytest.mark.parametrize(
        "query",
        [{"mp3"}, {"jazz"}, {"mp3", "jazz"}, {"piano"}, {"mp3", "jazz", "piano"}],
    )
    def test_matches_oracle(self, searcher, query):
        result = searcher.run(query)
        assert set(result.object_ids) == oracle(query)
        assert result.complete

    def test_no_duplicates(self, searcher):
        result = searcher.run({"mp3"})
        assert len(result.object_ids) == len(set(result.object_ids))

    def test_no_matches(self, searcher):
        result = searcher.run({"does-not-exist"})
        assert result.objects == ()
        assert result.complete

    def test_found_keywords_contain_query(self, searcher):
        result = searcher.run({"jazz"})
        for found in result.objects:
            assert result.query <= found.keywords

    def test_all_orders_same_object_set(self, searcher):
        reference = set(searcher.run({"mp3"}).object_ids)
        for order in TraversalOrder:
            assert set(searcher.run({"mp3"}, order=order).object_ids) == reference

    def test_query_normalization(self, searcher):
        assert set(searcher.run({" MP3 ", "Jazz"}).object_ids) == oracle({"mp3", "jazz"})


class TestThreshold:
    def test_threshold_caps_results(self, searcher):
        result = searcher.run({"mp3"}, threshold=2)
        assert len(result.objects) == 2

    def test_threshold_larger_than_matches(self, searcher):
        result = searcher.run({"mp3"}, threshold=100)
        assert set(result.object_ids) == oracle({"mp3"})
        assert result.complete  # queue drained without truncation

    def test_threshold_stops_early(self, searcher):
        capped = searcher.run({"mp3"}, threshold=1)
        full = searcher.run({"mp3"})
        assert len(capped.visits) <= len(full.visits)
        assert not capped.complete or len(full.objects) == 1

    def test_invalid_threshold(self, searcher):
        with pytest.raises(ValueError):
            searcher.run({"mp3"}, threshold=0)


class TestRecallAccessor:
    def test_zero_recall_needs_no_visits(self, searcher):
        result = searcher.run({"mp3"})
        assert result.nodes_contacted_for_recall(0.0, len(result.objects)) == 0
        assert result.nodes_contacted_for_recall(0.5, 0) == 0

    def test_full_recall_counts_through_last_serving_visit(self, searcher):
        result = searcher.run({"mp3"})
        count = result.nodes_contacted_for_recall(1.0, len(result.objects))
        served = sum(visit.returned for visit in result.visits[:count])
        assert served == len(result.objects)

    def test_invalid_fraction(self, searcher):
        result = searcher.run({"mp3"})
        with pytest.raises(ValueError):
            result.nodes_contacted_for_recall(1.5, 4)


class TestVisitStructure:
    def test_search_space_is_induced_subcube(self, searcher, loaded_index):
        result = searcher.run({"jazz"})
        sub = SubHypercube(loaded_index.cube, result.root_logical)
        for visit in result.visits:
            assert visit.logical in sub

    def test_exhaustive_search_visits_whole_subcube(self, searcher, loaded_index):
        result = searcher.run({"jazz"})
        assert len(result.visits) == loaded_index.cube.subcube_size(result.root_logical)

    def test_top_down_depths_nondecreasing(self, searcher):
        result = searcher.run({"jazz"}, order=TraversalOrder.TOP_DOWN)
        depths = [visit.depth for visit in result.visits]
        assert depths == sorted(depths)

    def test_bottom_up_serves_deepest_nodes_first(self, searcher):
        # The guarantee is on visit depth (Lemma 3.2 gives a *lower*
        # bound on extra keywords per depth, not an exact ordering).
        result = searcher.run({"mp3", "jazz"}, order=TraversalOrder.BOTTOM_UP)
        depths = [visit.depth for visit in result.visits]
        assert depths == sorted(depths, reverse=True)
        serving_depths = [v.depth for v in result.visits if v.returned]
        assert serving_depths == sorted(serving_depths, reverse=True)

    def test_top_down_serves_general_first(self, searcher):
        result = searcher.run({"mp3", "jazz"}, order=TraversalOrder.TOP_DOWN)
        # Visit depth lower-bounds extra keywords (Lemma 3.2): the first
        # result must have the fewest extra keywords.
        specificities = [found.specificity(result.query) for found in result.objects]
        assert specificities[0] == min(specificities)

    def test_depth_lower_bounds_extra_keywords(self, searcher):
        # Lemma 3.2: an object indexed at depth d has >= d extra keywords.
        result = searcher.run({"jazz"})
        depth_of_visit = {visit.order: visit.depth for visit in result.visits}
        cursor = 0
        for visit in result.visits:
            for _ in range(visit.returned):
                found = result.objects[cursor]
                assert found.specificity(result.query) >= depth_of_visit[visit.order]
                cursor += 1

    def test_parallel_rounds_bounded(self, searcher, loaded_index):
        result = searcher.run({"jazz"}, order=TraversalOrder.PARALLEL)
        one = loaded_index.cube.weight(result.root_logical)
        assert result.rounds == loaded_index.cube.dimension - one + 1

    def test_message_bound(self, searcher, loaded_index):
        result = searcher.run({"jazz"})
        subcube = loaded_index.cube.subcube_size(result.root_logical)
        # <= 2 messages per node + 1 direct result message per node,
        # plus DHT routing to the root.
        assert result.messages <= 3 * subcube + 2 * 16


class TestContactModes:
    def test_routed_mode_same_results_more_hops(self, loaded_index):
        direct = SuperSetSearch(loaded_index, contact_mode="direct").run({"jazz"})
        routed = SuperSetSearch(loaded_index, contact_mode="routed").run({"jazz"})
        assert set(direct.object_ids) == set(routed.object_ids)
        direct_hops = sum(visit.dht_hops for visit in direct.visits)
        routed_hops = sum(visit.dht_hops for visit in routed.visits)
        assert routed_hops >= direct_hops

    def test_invalid_contact_mode(self, loaded_index):
        with pytest.raises(ValueError):
            SuperSetSearch(loaded_index, contact_mode="psychic")


class TestCacheIntegration:
    @pytest.fixture()
    def cached_index(self, chord_ring):
        index = HypercubeIndex(
            Hypercube(6), chord_ring, cache_capacity=4
        )
        holder = chord_ring.any_address()
        for object_id, keywords in CATALOGUE.items():
            index.insert(object_id, keywords, holder)
        return index

    def test_second_query_hits_cache(self, cached_index):
        searcher = SuperSetSearch(cached_index)
        first = searcher.run({"mp3"}, use_cache=True)
        second = searcher.run({"mp3"}, use_cache=True)
        assert not first.cache_hit
        assert second.cache_hit
        assert set(second.object_ids) == set(first.object_ids)
        assert len(second.visits) == 1  # only the root

    def test_cache_respects_complete_flag(self, cached_index):
        searcher = SuperSetSearch(cached_index)
        searcher.run({"mp3"}, threshold=1, use_cache=True)  # partial
        full = searcher.run({"mp3"}, use_cache=True)  # needs everything
        assert not full.cache_hit

    def test_partial_cache_serves_smaller_threshold(self, cached_index):
        searcher = SuperSetSearch(cached_index)
        searcher.run({"mp3"}, threshold=3, use_cache=True)
        again = searcher.run({"mp3"}, threshold=2, use_cache=True)
        assert again.cache_hit
        assert len(again.objects) == 2

    def test_cache_patched_after_delete(self, cached_index, chord_ring):
        # Coherence protocol (docs/protocol.md §16): a delete patches
        # complete cached entries in place, so the next cached answer
        # no longer references the withdrawn object.
        searcher = SuperSetSearch(cached_index)
        searcher.run({"mp3"}, use_cache=True)
        cached_index.delete("kind-of-blue", CATALOGUE["kind-of-blue"], chord_ring.any_address())
        patched = searcher.run({"mp3"}, use_cache=True)
        assert patched.cache_hit  # complete entries are patched, not dropped
        assert "kind-of-blue" not in patched.object_ids
        fresh = searcher.run({"mp3"}, use_cache=False)
        assert set(patched.object_ids) == set(fresh.object_ids)

    def test_cache_invalidated_after_insert(self, cached_index, chord_ring):
        # An insert below a cached query drops the entry: the next query
        # walks fresh and surfaces the new object.
        searcher = SuperSetSearch(cached_index)
        searcher.run({"mp3"}, use_cache=True)
        cached_index.insert("new-release", {"mp3", "fresh"}, chord_ring.any_address())
        after = searcher.run({"mp3"}, use_cache=True)
        assert not after.cache_hit
        assert "new-release" in after.object_ids


class TestFailureTolerance:
    def test_skip_unreachable_degrades_gracefully(self, loaded_index, chord_ring):
        searcher = SuperSetSearch(loaded_index, skip_unreachable=True)
        baseline = set(searcher.run({"jazz"}).object_ids)
        alive_origin = None
        # Fail a third of the physical nodes (not the query origin).
        addresses = chord_ring.addresses()
        alive_origin = addresses[0]
        for victim in addresses[1 : len(addresses) // 3]:
            chord_ring.network.fail(victim)
        degraded = searcher.run({"jazz"}, origin=alive_origin)
        assert set(degraded.object_ids) <= baseline

    def test_without_skip_raises(self, loaded_index, chord_ring):
        from repro.sim.network import NodeUnreachableError

        searcher = SuperSetSearch(loaded_index)
        result = searcher.run({"jazz"})
        victims = {visit.physical for visit in result.visits}
        origin = next(
            a for a in chord_ring.addresses() if a not in victims
        )
        for victim in victims:
            chord_ring.network.fail(victim)
        with pytest.raises(NodeUnreachableError):
            searcher.run({"jazz"}, origin=origin)


class TestParallelLevelBudget:
    """Pin the deterministic budget rule of the concurrent walk: every
    visit of a level carries the budget *as it stood at level entry*,
    and the collected overshoot is trimmed to the threshold afterwards
    (PR 5; Section 3.5's latency/message trade)."""

    @pytest.fixture()
    def split_index(self, chord_ring):
        """Six matches for {"alpha"}, three on each of two depth-1
        nodes, none on the root."""
        index = HypercubeIndex(Hypercube(5), chord_ring)
        index.bulk_load(
            [(f"b-{i}", {"alpha", "beta"}) for i in range(3)]
            + [(f"c-{i}", {"alpha", "gamma"}) for i in range(3)]
        )
        return index

    def test_level_shares_entry_budget(self, split_index):
        result = SuperSetSearch(split_index).run(
            {"alpha"}, threshold=4, order=TraversalOrder.PARALLEL
        )
        # Both holders were scanned with the level-entry budget (4), so
        # each returned all 3 of its objects — a serialized decrement
        # would have cut the second scan to 1.
        assert sorted(v.returned for v in result.visits if v.returned) == [3, 3]
        # The caller-visible contract is unchanged: min(t, |O_K|)
        # objects, and the dropped overshoot marks the result partial.
        assert len(result.objects) == 4
        assert not result.complete
        assert result.rounds == 2  # root round + one full level

    def test_sequential_top_down_decrements_instead(self, split_index):
        result = SuperSetSearch(split_index).run(
            {"alpha"}, threshold=4, order=TraversalOrder.TOP_DOWN
        )
        # Sequential baseline for contrast: the second holder only sees
        # the 1 slot the first left behind.
        assert sorted(v.returned for v in result.visits if v.returned) == [1, 3]
        assert len(result.objects) == 4
        assert not result.complete

    def test_rule_is_deterministic(self, split_index):
        searcher = SuperSetSearch(split_index)
        first = searcher.run({"alpha"}, threshold=4, order=TraversalOrder.PARALLEL)
        second = searcher.run({"alpha"}, threshold=4, order=TraversalOrder.PARALLEL)
        assert first.visits == second.visits
        assert first.object_ids == second.object_ids

    def test_untruncated_parallel_run_is_complete(self, split_index):
        result = SuperSetSearch(split_index).run(
            {"alpha"}, order=TraversalOrder.PARALLEL
        )
        assert len(result.objects) == 6
        assert result.complete

    def test_threshold_exactly_met_returns_everything(self, split_index):
        # All six matches fit in the threshold: nothing is dropped (the
        # walk still reports partial, since it stopped with an
        # unexplored frontier it cannot prove empty).
        result = SuperSetSearch(split_index).run(
            {"alpha"}, threshold=6, order=TraversalOrder.PARALLEL
        )
        assert len(result.objects) == 6
        assert set(result.object_ids) == {f"b-{i}" for i in range(3)} | {
            f"c-{i}" for i in range(3)
        }
