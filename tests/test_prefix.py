"""Prefix keyword search: the distributed directory and its planner.

Four layers.  The trie record encoding is pure math; the directory on
the simulator must resolve every prefix to exactly the oracle's
keyword set with message counts that track *matches* (never vocabulary
size); the planner must share its result budget across expansions and
rank with single-keyword parity; and the same recall contract must
hold replicated, over loopback TCP, across join/leave/crash churn, and
through a full durable restart.
"""

import pytest

from repro.core.config import SearchOptions, ServiceConfig
from repro.core.keywords import normalize_prefix
from repro.core.service import KeywordSearchService
from repro.load.mix import HarvestPrefixMix
from repro.net.cluster import LocalCluster
from repro.prefix.trie import (
    common_prefix_len,
    decode_records,
    edge_record,
    prefix_of,
    record_key,
    word_record,
)
from repro.store import FileStore
from repro.workload.corpus import SyntheticCorpus

CORPUS = [
    ("jazz.mp3", {"jazz", "mp3"}),
    ("jam.mp3", {"jam", "mp3"}),
    ("java.pdf", {"java", "code"}),
    ("jazzy.flac", {"jazzy", "music"}),
    ("rock.mp3", {"rock", "mp3"}),
    ("mpeg.bin", {"mpeg", "video"}),
]

CONFIG = ServiceConfig(dimension=5, num_dht_nodes=10, seed=7, prefix_directory=True)
REPLICATED = ServiceConfig(
    dimension=5, num_dht_nodes=10, seed=7, prefix_directory=True, index_replicas=2
)

#: Every prefix of every corpus keyword, plus a few misses.
PREFIXES = sorted(
    {
        keyword[:length]
        for _, kws in CORPUS
        for keyword in kws
        for length in range(1, len(keyword) + 1)
    }
) + ["z", "jab", "mp3x"]


def publish_corpus(service) -> None:
    for object_id, keywords in CORPUS:
        service.publish(object_id, keywords)


def keyword_oracle(prefix: str) -> set[str]:
    return {k for _, kws in CORPUS for k in kws if k.startswith(prefix)}


def object_oracle(prefix: str) -> set[str]:
    return {
        object_id
        for object_id, kws in CORPUS
        if any(k.startswith(prefix) for k in kws)
    }


def assert_full_recall(service) -> None:
    """Every prefix resolves and searches to exactly the oracle sets."""
    for prefix in PREFIXES:
        resolution = service.directory.resolve(prefix)
        assert set(resolution.keywords) == keyword_oracle(prefix), prefix
        assert resolution.complete
        result = service.prefix_search(prefix) if keyword_oracle(prefix) else None
        if result is not None:
            assert set(result.results()) == object_oracle(prefix), prefix
            assert result.complete


class TestTrieRecords:
    def test_record_round_trip(self):
        assert prefix_of(record_key("jaz")) == "jaz"
        edges, objects = decode_records(
            [edge_record("zz"), edge_record("m"), word_record("a.pdf"), word_record("b.pdf")]
        )
        assert edges == {"m": ("m",), "z": ("zz",)}
        assert objects == ("a.pdf", "b.pdf")

    def test_duplicate_runs_per_letter_are_kept(self):
        # A reader racing an edge split may see both the old and the new
        # run; both must survive decoding so the reader can follow both.
        edges, _ = decode_records([edge_record("zz"), edge_record("z")])
        assert edges == {"z": ("z", "zz")}

    def test_common_prefix_len(self):
        assert common_prefix_len("jazz", "jam") == 2
        assert common_prefix_len("jazz", "jazz") == 4
        assert common_prefix_len("jazz", "rock") == 0
        assert common_prefix_len("ja", "jazz") == 2


class TestDirectoryResolution:
    def test_full_recall_on_simulator(self):
        service = KeywordSearchService.create(CONFIG)
        publish_corpus(service)
        assert_full_recall(service)

    def test_messages_track_matches_not_vocabulary(self):
        # Same matching set, 10x the unrelated vocabulary: resolution
        # cost for the prefix must not move.  (Fillers share no prefix
        # with the probe, so only the root sees them.)
        costs = []
        for fillers in (30, 300):
            service = KeywordSearchService.create(CONFIG)
            publish_corpus(service)
            for i in range(fillers):
                service.publish(f"filler-{i}.bin", {f"k{i:04d}", "bulk"})
            resolution = service.directory.resolve("ja")
            assert set(resolution.keywords) == {"jam", "java", "jazz", "jazzy"}
            costs.append(resolution.messages)
        assert costs[0] == costs[1]

    def test_messages_bounded_by_matches_and_depth(self):
        # Patricia bound: <= len(prefix) on-path fetches, and the
        # matching subtree has fewer internal nodes than leaves.
        service = KeywordSearchService.create(CONFIG)
        publish_corpus(service)
        for prefix in PREFIXES:
            resolution = service.directory.resolve(prefix)
            matches = len(resolution.keywords)
            assert resolution.messages <= len(prefix) + 2 * matches + 1, prefix

    def test_resolution_is_deterministic_and_bfs_ordered(self):
        service = KeywordSearchService.create(CONFIG)
        publish_corpus(service)
        first = service.directory.resolve("ja")
        second = service.directory.resolve("ja")
        assert first == second
        # BFS: shorter completions surface before longer ones.
        keywords = list(first.keywords)
        assert keywords.index("jazz") < keywords.index("jazzy")

    def test_expansion_limit_truncates(self):
        service = KeywordSearchService.create(CONFIG)
        publish_corpus(service)
        resolution = service.directory.resolve("ja", limit=2)
        assert len(resolution.keywords) == 2
        assert resolution.truncated
        assert not resolution.complete

    def test_unpublish_prunes_the_trie(self):
        service = KeywordSearchService.create(CONFIG)
        publish_corpus(service)
        for object_id, _ in CORPUS:
            holder = next(h for (o, h) in service._published if o == object_id)
            service.unpublish(object_id, holder=holder)
        assert service.directory.resolve("j").keywords == ()
        # Not just unreachable: every directory row is physically gone.
        for address in service.dolr.addresses():
            shard = service.dolr.node(address).application("hindex")
            assert not [k for k in shard.tables if k[0].startswith("pfx/")]

    def test_partial_unpublish_keeps_other_holders(self):
        service = KeywordSearchService.create(CONFIG)
        publish_corpus(service)
        holder_a, holder_b = service.dolr.addresses()[:2]
        service.publish("shared.bin", {"jaguar"}, holder=holder_a)
        service.publish("shared.bin", {"jaguar"}, holder=holder_b)
        service.unpublish("shared.bin", holder=holder_a)
        # A copy remains: the keyword must still resolve.
        assert "jaguar" in service.directory.resolve("jag").keywords
        service.unpublish("shared.bin", holder=holder_b)
        assert "jaguar" not in service.directory.resolve("jag").keywords


class TestPrefixPlanner:
    def test_single_keyword_parity_with_superset_search(self):
        # A prefix matching exactly one keyword must answer exactly like
        # the superset search for that keyword — same objects, same
        # extra-keyword ranking, same completeness.
        service = KeywordSearchService.create(CONFIG)
        publish_corpus(service)
        via_prefix = service.prefix_search("rock")
        via_superset = service.superset_search({"rock"})
        assert via_prefix.results() == via_superset.results()
        assert via_prefix.complete == via_superset.complete

    def test_merges_dedup_across_expansions(self):
        service = KeywordSearchService.create(CONFIG)
        publish_corpus(service)
        service.publish("both.bin", {"jazz", "jam"})
        result = service.prefix_search("ja")
        assert sorted(result.results()).count("both.bin") == 1

    def test_threshold_is_shared_across_expansions(self):
        service = KeywordSearchService.create(CONFIG)
        publish_corpus(service)
        result = service.prefix_search("ja", threshold=2)
        assert len(result.results()) == 2
        assert not result.complete  # matches were left behind
        full = service.prefix_search("ja")
        assert set(result.results()) <= set(full.results())

    def test_max_expansions_budget(self):
        service = KeywordSearchService.create(CONFIG)
        publish_corpus(service)
        result = service.prefix_search("ja", max_expansions=1)
        assert len(result.matched_keywords) == 1
        assert not result.complete

    def test_prefix_is_normalized(self):
        service = KeywordSearchService.create(CONFIG)
        publish_corpus(service)
        assert (
            service.prefix_search("  JA ").results()
            == service.prefix_search("ja").results()
        )

    def test_search_options_dispatch(self):
        service = KeywordSearchService.create(CONFIG)
        publish_corpus(service)
        options = SearchOptions(prefix=True, max_expansions=8)
        assert set(service.search("ja", options).results()) == object_oracle("ja")
        assert set(service.search(["ja"], options).results()) == object_oracle("ja")

    def test_requires_directory(self):
        service = KeywordSearchService.create(
            ServiceConfig(dimension=5, num_dht_nodes=10, seed=7)
        )
        with pytest.raises(RuntimeError, match="prefix_directory"):
            service.prefix_search("ja")

    def test_trace_carries_resolve_and_expand_events(self):
        service = KeywordSearchService.create(CONFIG)
        publish_corpus(service)
        result = service.prefix_search("ja", trace=True)
        assert result.trace is not None
        (resolve_event,) = result.trace.events_of("prefix_resolve")
        assert resolve_event.detail["matched"] == sorted(result.matched_keywords)
        expands = result.trace.events_of("prefix_expand")
        assert [e.detail["keyword"] for e in expands] == list(result.expanded_keywords)
        # Tracing never changes the answer.
        assert result.results() == service.prefix_search("ja").results()


class TestReplicatedDirectory:
    def test_full_recall_replicated(self):
        service = KeywordSearchService.create(REPLICATED)
        publish_corpus(service)
        assert_full_recall(service)

    def test_resolution_fails_over_past_a_crashed_host(self):
        with LocalCluster(REPLICATED, membership=True) as cluster:
            publish_corpus(cluster.service)
            baseline = {p: set(cluster.service.directory.resolve(p).keywords) for p in PREFIXES}
            victim = cluster.addresses()[3]
            cluster.crash_node(victim)
            # Before any repair: reads fail over to the other replica's
            # trie, so every prefix still resolves exactly.
            for prefix in PREFIXES:
                resolution = cluster.service.directory.resolve(prefix)
                assert set(resolution.keywords) == baseline[prefix], prefix

    def test_death_repair_restores_directory_rows(self):
        with LocalCluster(REPLICATED, membership=True) as cluster:
            publish_corpus(cluster.service)
            baseline = {p: set(cluster.service.directory.resolve(p).keywords) for p in PREFIXES}
            victim = cluster.addresses()[3]
            cluster.declare_crashed(victim)
            assert victim not in cluster.addresses()
            for prefix in PREFIXES:
                resolution = cluster.service.directory.resolve(prefix)
                assert set(resolution.keywords) == baseline[prefix], prefix
                assert resolution.complete, prefix


class TestClusterPrefixSearch:
    def test_full_recall_over_loopback_tcp(self):
        with LocalCluster(CONFIG) as cluster:
            publish_corpus(cluster.service)
            with cluster.client() as client:
                for prefix in ("j", "ja", "mp", "mu", "rock"):
                    result = client.search(prefix, SearchOptions(prefix=True))
                    assert set(result.results()) == object_oracle(prefix), prefix

    def test_join_and_leave_keep_recall(self):
        with LocalCluster(CONFIG, membership=True) as cluster:
            publish_corpus(cluster.service)
            baseline = {p: object_oracle(p) for p in ("j", "ja", "mp", "rock")}

            def check():
                for prefix, expected in baseline.items():
                    result = cluster.service.prefix_search(prefix)
                    assert set(result.results()) == expected, prefix
                    assert result.complete, prefix

            addresses = cluster.addresses()
            joiner = max(addresses, key=lambda a: a) - 1
            assert joiner not in addresses
            cluster.join_node(joiner)
            check()
            cluster.leave_node(joiner)
            check()
            victim = cluster.addresses()[0]
            cluster.leave_node(victim)
            check()


class TestDurability:
    def test_directory_survives_restart(self, tmp_path):
        def factory(address: int) -> FileStore:
            return FileStore(tmp_path / f"node-{address}")

        service = KeywordSearchService.create(CONFIG, store_factory=factory)
        publish_corpus(service)
        expected = {p: set(service.directory.resolve(p).keywords) for p in PREFIXES}
        service.close_stores()

        reborn = KeywordSearchService.create(CONFIG, store_factory=factory)
        # No re-publish: the trie must come back from the WALs alone.
        for prefix in PREFIXES:
            assert set(reborn.directory.resolve(prefix).keywords) == expected[prefix]
        assert set(reborn.prefix_search("ja").results()) == object_oracle("ja")
        reborn.close_stores()


class TestHarvestPrefixMix:
    def test_deterministic_and_prefix_shaped(self):
        corpus = SyntheticCorpus.generate(num_objects=80, vocabulary_size=64, seed=3)
        first = HarvestPrefixMix.from_corpus(corpus, seed=5)
        second = HarvestPrefixMix.from_corpus(corpus, seed=5)
        draws = [first.next_prefix() for _ in range(50)]
        assert draws == [second.next_prefix() for _ in range(50)]
        vocabulary = corpus.vocabulary_used()
        for prefix in draws:
            assert any(word.startswith(prefix) for word in vocabulary)

    def test_discovery_grows_the_pool(self):
        corpus = SyntheticCorpus.generate(num_objects=80, vocabulary_size=64, seed=3)
        mix = HarvestPrefixMix.from_corpus(corpus, discovered=1, seed=5)
        frequencies = corpus.keyword_frequencies()
        ranked = sorted(frequencies, key=lambda w: (-frequencies[w], w))
        # Only the single discovered word can be probed.
        for _ in range(20):
            assert ranked[0].startswith(mix.next_prefix())
        assert mix.discover(10) == 11
        assert mix.discovered == 11

    def test_next_query_wraps_single_prefix(self):
        corpus = SyntheticCorpus.generate(num_objects=80, vocabulary_size=64, seed=3)
        mix = HarvestPrefixMix.from_corpus(corpus, seed=5)
        query = mix.next_query()
        assert isinstance(query, frozenset) and len(query) == 1

    def test_validates_inputs(self):
        with pytest.raises(ValueError, match="vocabulary"):
            HarvestPrefixMix([])
        with pytest.raises(ValueError, match="min_length"):
            HarvestPrefixMix(["word"], min_length=0)


class TestNormalizationAgreement:
    def test_prefix_and_keyword_pipelines_agree(self):
        # The satellite contract: a prefix of a keyword's *raw* form,
        # canonicalized, must be a prefix of the canonicalized keyword.
        service = KeywordSearchService.create(CONFIG)
        service.publish("unicode.bin", {"Straße"})  # casefolds to 'strasse'
        assert normalize_prefix("STRAS") == "stras"
        assert set(service.prefix_search("STRAS").results()) == {"unicode.bin"}
        assert set(service.prefix_search("straß").results()) == {"unicode.bin"}
