"""Tests for category sampling and query refinement."""

import pytest

from repro.core.index import HypercubeIndex
from repro.core.sampling import SampledSearch, suggest_refinements
from repro.dht.chord import ChordNetwork
from repro.hypercube.hypercube import Hypercube

LIBRARY = {
    "plain-1": frozenset({"mp3"}),
    "plain-2": frozenset({"mp3"}),
    "jazz-1": frozenset({"mp3", "jazz"}),
    "jazz-2": frozenset({"mp3", "jazz"}),
    "jazz-3": frozenset({"mp3", "jazz"}),
    "rock-1": frozenset({"mp3", "rock"}),
    "deep-1": frozenset({"mp3", "jazz", "piano"}),
    "other": frozenset({"flac"}),
}


@pytest.fixture()
def index():
    ring = ChordNetwork.build(bits=16, num_nodes=16, seed=61)
    index = HypercubeIndex(Hypercube(7), ring)
    index.bulk_load(LIBRARY.items())
    return index


class TestSampledSearch:
    def test_categories_keyed_by_extra_keywords(self, index):
        sample = SampledSearch(index).run({"mp3"}, per_category=5)
        assert frozenset() in sample.categories  # the exact matches
        assert frozenset({"jazz"}) in sample.categories
        assert frozenset({"rock"}) in sample.categories
        assert frozenset({"jazz", "piano"}) in sample.categories

    def test_per_category_bound(self, index):
        sample = SampledSearch(index).run({"mp3"}, per_category=2)
        for group in sample.categories.values():
            assert len(group) <= 2
        assert len(sample.categories[frozenset({"jazz"})]) == 2

    def test_samples_belong_to_their_category(self, index):
        sample = SampledSearch(index).run({"mp3"}, per_category=3)
        for extra, group in sample.categories.items():
            for found in group:
                assert found.keywords - sample.query == extra

    def test_max_categories_stops_early(self, index):
        sample = SampledSearch(index).run({"mp3"}, per_category=1, max_categories=1)
        assert sample.num_categories == 1

    def test_max_visits_budget(self, index):
        sample = SampledSearch(index).run({"mp3"}, max_visits=3)
        assert sample.visits <= 3
        assert not sample.exhaustive

    def test_general_first_ordering(self, index):
        sample = SampledSearch(index).run({"mp3"}, per_category=1)
        ordered = sample.general_first()
        sizes = [len(extra) for extra in ordered]
        assert sizes == sorted(sizes)

    def test_no_matches(self, index):
        sample = SampledSearch(index).run({"vinyl"})
        assert sample.categories == {}
        assert sample.exhaustive

    def test_validation(self, index):
        searcher = SampledSearch(index)
        with pytest.raises(ValueError):
            searcher.run({"mp3"}, per_category=0)
        with pytest.raises(ValueError):
            searcher.run({"mp3"}, max_categories=0)


class TestRefinements:
    def test_suggestions_ranked_by_score(self, index):
        sample = SampledSearch(index).run({"mp3"}, per_category=5)
        suggestions = suggest_refinements(sample, index)
        scores = [s.score for s in suggestions]
        assert scores == sorted(scores, reverse=True)

    def test_support_counts_samples(self, index):
        sample = SampledSearch(index).run({"mp3"}, per_category=5)
        by_keyword = {s.keyword: s for s in suggest_refinements(sample, index, limit=10)}
        assert by_keyword["jazz"].support >= 3  # jazz-1..3 (+ deep-1)
        assert by_keyword["rock"].support == 1

    def test_refined_query_extends_original(self, index):
        sample = SampledSearch(index).run({"mp3"}, per_category=3)
        for suggestion in suggest_refinements(sample, index):
            assert sample.query < suggestion.refined_query

    def test_subcube_reduction_bounds(self, index):
        sample = SampledSearch(index).run({"mp3"}, per_category=5)
        for suggestion in suggest_refinements(sample, index, limit=10):
            assert 0.0 <= suggestion.subcube_reduction <= 0.5

    def test_limit(self, index):
        sample = SampledSearch(index).run({"mp3"}, per_category=5)
        assert len(suggest_refinements(sample, index, limit=2)) <= 2
        with pytest.raises(ValueError):
            suggest_refinements(sample, index, limit=0)
