"""Tests for the resilient messaging layer (repro.sim.resilience)."""

import random

import pytest

from repro.core.config import ServiceConfig
from repro.core.service import KeywordSearchService
from repro.net.transport import RpcCall
from repro.sim.events import EventScheduler
from repro.sim.network import NodeUnreachableError, SimulatedNetwork
from repro.sim.resilience import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    ResilientChannel,
    RetryPolicy,
)
from repro.workload.corpus import SyntheticCorpus


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)

    def test_exponential_schedule_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=4.0, multiplier=2.0, max_delay=10.0, jitter=0.0
        )
        assert policy.schedule() == [4.0, 8.0, 10.0, 10.0]  # capped at max_delay

    def test_jittered_schedule_is_seeded_and_bounded(self):
        policy = RetryPolicy(max_attempts=4, base_delay=8.0, jitter=0.5)
        first = policy.schedule(random.Random(42))
        second = policy.schedule(random.Random(42))
        assert first == second  # same seed, same virtual retry times
        assert first != policy.schedule(random.Random(43))
        for delay, ceiling in zip(first, [8.0, 16.0, 32.0]):
            assert ceiling / 2 <= delay <= ceiling

    def test_resilient_flag(self):
        assert not RetryPolicy.none().resilient
        assert RetryPolicy.default().resilient
        assert RetryPolicy(max_attempts=1, deadline=10.0).resilient


class TestCircuitBreaker:
    def make(self, **kwargs):
        scheduler = EventScheduler()
        policy = BreakerPolicy(**{"failure_threshold": 3, "reset_timeout": 100.0, **kwargs})
        return CircuitBreaker(policy, lambda: scheduler.now), scheduler

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make()
        for _ in range(2):
            assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # third failure trips it
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_success_resets_failure_count(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_closes_on_success(self):
        breaker, scheduler = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        scheduler.advance(100.0)  # virtual time, not wall time
        assert breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_reopens_on_failure(self):
        breaker, scheduler = self.make()
        for _ in range(3):
            breaker.record_failure()
        scheduler.advance(100.0)
        assert breaker.allow()
        assert breaker.record_failure() is True
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 2


class _FlakyEndpoint:
    """Handler that raises NodeUnreachableError for the first N calls."""

    def __init__(self, address: int, failures: int):
        self.address = address
        self.failures = failures
        self.calls = 0

    def __call__(self, message):
        self.calls += 1
        if self.calls <= self.failures:
            raise NodeUnreachableError(self.address)
        return {"ok": True}


def make_network():
    network = SimulatedNetwork()
    network.register(1, lambda message: {"echo": message.payload})
    return network


class TestResilientChannel:
    def test_passthrough_accounting_is_identical(self):
        direct, channelled = make_network(), make_network()
        direct.rpc(0, 1, "ping", {})
        ResilientChannel(channelled).rpc(0, 1, "ping", {})
        assert (
            direct.metrics.counter("network.messages")
            == channelled.metrics.counter("network.messages")
            == 2
        )

    def test_retries_recover_transient_failures(self):
        network = make_network()
        flaky = _FlakyEndpoint(2, failures=2)
        network.register(2, flaky)
        policy = RetryPolicy(max_attempts=3, base_delay=4.0, jitter=0.0)
        channel = ResilientChannel(network, policy)
        before = network.scheduler.now
        assert channel.rpc(0, 2, "ping", {}) == {"ok": True}
        assert flaky.calls == 3
        assert network.metrics.counter("rpc.retries") == 2
        assert network.metrics.counter("rpc.failures") == 2
        # Backoff slept 4 + 8 units of *virtual* time between attempts.
        assert network.scheduler.now - before >= 12.0

    def test_exhausted_attempts_raise_last_error(self):
        network = make_network()
        network.register(2, _FlakyEndpoint(2, failures=99))
        channel = ResilientChannel(network, RetryPolicy(max_attempts=2, jitter=0.0))
        with pytest.raises(NodeUnreachableError):
            channel.rpc(0, 2, "ping", {})
        assert network.metrics.counter("rpc.exhausted") == 1
        assert network.metrics.counter("rpc.attempts") == 2

    def test_deadline_expires_on_virtual_clock(self):
        network = make_network()
        network.register(2, _FlakyEndpoint(2, failures=99))
        policy = RetryPolicy(
            max_attempts=10, base_delay=50.0, jitter=0.0, deadline=75.0
        )
        channel = ResilientChannel(network, policy)
        start = network.scheduler.now
        with pytest.raises(DeadlineExceededError):
            channel.rpc(0, 2, "ping", {})
        # First backoff (50) fits the deadline, the second (100) does not.
        assert network.metrics.counter("rpc.deadline_exceeded") == 1
        assert network.scheduler.now - start <= 75.0

    def test_expired_budget_raises_before_sending(self):
        # Latency 1 per hop: the first attempt fails at t=1, the backoff
        # (1) sleeps exactly to the deadline at t=2.  The second attempt
        # has zero budget left and must NOT be sent — no extra attempt,
        # no extra message.
        network = make_network()
        network.register(2, _FlakyEndpoint(2, failures=99))
        policy = RetryPolicy(max_attempts=10, base_delay=1.0, jitter=0.0, deadline=2.0)
        channel = ResilientChannel(network, policy)
        with pytest.raises(DeadlineExceededError):
            channel.rpc(0, 2, "ping", {})
        assert network.metrics.counter("rpc.attempts") == 1
        assert network.metrics.counter("network.messages") == 1
        assert network.metrics.counter("rpc.deadline_exceeded") == 1

    def test_breaker_fails_fast_and_recovers(self):
        network = make_network()
        network.register(2, lambda message: {"ok": True})
        network.fail(2)
        channel = ResilientChannel(
            network,
            RetryPolicy.none(),
            breaker=BreakerPolicy(failure_threshold=2, reset_timeout=64.0),
        )
        for _ in range(2):
            with pytest.raises(NodeUnreachableError):
                channel.rpc(0, 2, "ping", {})
        # Breaker is now open: the call fails without touching the network.
        attempts = network.metrics.counter("rpc.attempts")
        with pytest.raises(CircuitOpenError):
            channel.rpc(0, 2, "ping", {})
        assert network.metrics.counter("rpc.attempts") == attempts
        assert network.metrics.counter("breaker.rejected") == 1
        assert channel.breaker_for(2).state is BreakerState.OPEN
        # After the reset timeout (virtual time) a probe goes through and
        # the healed destination closes the breaker.
        network.recover(2)
        network.scheduler.advance(64.0)
        assert channel.rpc(0, 2, "ping", {}) == {"ok": True}
        assert channel.breaker_for(2).state is BreakerState.CLOSED
        assert network.metrics.counter("breaker.closed") == 1

    def test_send_swallowed_while_breaker_open(self):
        network = make_network()
        network.fail(1)
        channel = ResilientChannel(
            network, breaker=BreakerPolicy(failure_threshold=1, reset_timeout=1e9)
        )
        with pytest.raises(NodeUnreachableError):
            channel.rpc(0, 1, "ping", {})
        assert channel.send(0, 1, "datagram", {}) is False
        assert network.metrics.counter("breaker.rejected") == 1

    def test_retries_beat_message_loss(self):
        network = make_network()
        network.set_loss_rate(0.25, rng=7)
        channel = ResilientChannel(network, RetryPolicy(max_attempts=5, base_delay=1.0))
        for _ in range(50):
            assert channel.rpc(0, 1, "ping", {}) == {"echo": {}}
        assert network.metrics.counter("network.dropped") > 0
        assert network.metrics.counter("rpc.retries") > 0

    def test_attempt_latency_histogram_recorded(self):
        network = make_network()
        ResilientChannel(network).rpc(0, 1, "ping", {})
        assert network.metrics.samples("rpc.attempt_latency")


class TestSearchUnderFailures:
    """The acceptance scenario: 10% of DHT nodes fail-stop; a superset
    search under the default RetryPolicy completes without raising and
    reports the visits it had to degrade."""

    def make_service(self) -> KeywordSearchService:
        return KeywordSearchService.create(
            ServiceConfig(
                dimension=8,
                num_dht_nodes=50,
                seed=9,
                resilience=RetryPolicy.default(),
                breaker=BreakerPolicy(failure_threshold=3, reset_timeout=64.0),
            )
        )

    def test_search_degrades_instead_of_raising(self):
        service = self.make_service()
        corpus = SyntheticCorpus.generate(num_objects=400, seed=9)
        peers = service.index.dolr.addresses()
        for position, record in enumerate(corpus):
            service.publish(
                record.object_id, record.keywords, holder=peers[position % len(peers)]
            )
        keyword, _ = corpus.keyword_frequencies().most_common(1)[0]

        rng = random.Random(13)
        victims = rng.sample(peers, len(peers) // 10)
        for victim in victims:
            service.network.fail(victim)
        origin = next(a for a in peers if service.network.is_alive(a))

        result = service.superset_search({keyword}, origin=origin)

        assert result.results()  # live entries still found
        assert result.degraded
        assert result.degraded_visits
        assert all(v.status in ("ok", "replica", "surrogate", "failed") for v in result.visits)
        metrics = service.resilience_metrics()
        assert metrics["rpc.retries"] > 0
        assert metrics["rpc.attempts"] > metrics["rpc.failures"]
        assert metrics["search.degraded_visits"] == len(result.degraded_visits)

    def test_strict_service_raises_where_resilient_degrades(self):
        strict = KeywordSearchService.create(
            ServiceConfig(dimension=6, num_dht_nodes=20, seed=4)
        )
        resilient = KeywordSearchService.create(
            ServiceConfig(
                dimension=6, num_dht_nodes=20, seed=4,
                resilience=RetryPolicy(max_attempts=2, base_delay=1.0),
            )
        )
        origins = {}
        for service in (strict, resilient):
            for obj, keywords in (("a", {"x", "y"}), ("b", {"x", "z"})):
                service.publish(obj, keywords)
            # Fail exactly the peer serving the {x, y} index entry —
            # a node every un-thresholded {x} superset search visits.
            victim = service.pin_search({"x", "y"}).physical_node
            service.network.fail(victim)
            origins[service] = next(
                a for a in service.index.dolr.addresses()
                if service.network.is_alive(a)
            )

        with pytest.raises(NodeUnreachableError):
            strict.superset_search({"x"}, origin=origins[strict])
        # Same failure, resilient channel: degrades, must not raise.
        result = resilient.superset_search({"x"}, origin=origins[resilient])
        assert result.degraded_visits


class TestResilientChannelBatch:
    """ResilientChannel.rpc_many: retries, deadlines, and breakers are
    tracked per call while the round itself stays concurrent."""

    def batch(self, *dsts, src=0):
        return [RpcCall(src, dst, "ping", {"n": i}) for i, dst in enumerate(dsts)]

    def test_outcomes_in_call_order(self):
        network = make_network()
        network.register(2, lambda m: {"two": True})
        channel = ResilientChannel(network)
        outcomes = channel.rpc_many(self.batch(2, 1))
        assert outcomes[0].unwrap() == {"two": True}
        assert outcomes[1].unwrap() == {"echo": {"n": 1}}

    def test_each_call_retries_independently(self):
        network = make_network()
        flaky = _FlakyEndpoint(2, failures=2)
        network.register(2, flaky)
        channel = ResilientChannel(network, RetryPolicy(max_attempts=3, base_delay=1.0))
        outcomes = channel.rpc_many(self.batch(1, 2))
        assert all(o.ok for o in outcomes)
        assert flaky.calls == 3
        # The healthy call consumed one attempt, the flaky one three.
        assert network.metrics.counter("rpc.attempts") == 4
        assert network.metrics.counter("rpc.retries") == 2
        assert network.metrics.counter("rpc.failures") == 2

    def test_round_sleeps_once_for_the_longest_backoff(self):
        network = make_network()
        network.register(2, _FlakyEndpoint(2, failures=1))
        network.register(3, _FlakyEndpoint(3, failures=1))
        channel = ResilientChannel(network, RetryPolicy(max_attempts=2, base_delay=4.0))
        started = network.now()
        outcomes = channel.rpc_many(self.batch(2, 3))
        assert all(o.ok for o in outcomes)
        # One shared 4.0 backoff sleep, not one per retried call: total
        # elapsed stays under two backoff periods.
        assert network.now() - started < 8.0

    def test_exhausted_call_returns_final_error(self):
        network = make_network()
        network.register(2, _FlakyEndpoint(2, failures=10))
        channel = ResilientChannel(network, RetryPolicy(max_attempts=2, base_delay=1.0))
        outcomes = channel.rpc_many(self.batch(1, 2))
        assert outcomes[0].ok
        assert isinstance(outcomes[1].error, NodeUnreachableError)
        assert network.metrics.counter("rpc.exhausted") == 1

    def test_deadline_is_tracked_per_call(self):
        network = make_network()
        network.register(2, _FlakyEndpoint(2, failures=10))
        channel = ResilientChannel(
            network, RetryPolicy(max_attempts=10, base_delay=50.0, deadline=60.0)
        )
        outcomes = channel.rpc_many(self.batch(1, 2))
        assert outcomes[0].ok
        # The failing call gives up when its backoff would cross its own
        # deadline — well before ten 50-unit sleeps.
        assert isinstance(outcomes[1].error, DeadlineExceededError)
        assert network.now() <= 60.0 + 50.0

    def test_breaker_rejects_per_destination(self):
        network = make_network()
        network.register(2, _FlakyEndpoint(2, failures=100))
        channel = ResilientChannel(
            network,
            RetryPolicy.none(),
            breaker=BreakerPolicy(failure_threshold=2, reset_timeout=1000.0),
        )
        channel.rpc_many(self.batch(2))
        channel.rpc_many(self.batch(2))  # second failure opens the breaker
        outcomes = channel.rpc_many(self.batch(1, 2))
        assert outcomes[0].ok  # destination 1 is unaffected
        assert isinstance(outcomes[1].error, CircuitOpenError)
        assert network.metrics.counter("breaker.rejected") == 1
        # The rejected call never touched the wire.
        assert network.received_counts[2] == 2

    def test_non_retryable_error_passes_through_unretried(self):
        network = make_network()
        calls = {"n": 0}

        def boom(message):
            calls["n"] += 1
            raise RuntimeError("handler bug")

        network.register(2, boom)
        channel = ResilientChannel(network, RetryPolicy(max_attempts=5, base_delay=1.0))
        outcomes = channel.rpc_many(self.batch(2))
        assert isinstance(outcomes[0].error, RuntimeError)
        assert calls["n"] == 1  # a handler bug is not a delivery failure

    def test_falls_back_to_sequential_for_legacy_transports(self):
        network = make_network()

        class LegacyTransport:
            """Pre-batch transport: only the scalar rpc method."""

            def __init__(self, inner):
                self.inner = inner
                self.metrics = inner.metrics

            def rpc(self, src, dst, kind, payload=None, *, timeout=None):
                return self.inner.rpc(src, dst, kind, payload, timeout=timeout)

            def now(self):
                return self.inner.now()

            def sleep(self, delay):
                self.inner.sleep(delay)

        channel = ResilientChannel(LegacyTransport(network))
        outcomes = channel.rpc_many(self.batch(1, 1))
        assert [o.unwrap() for o in outcomes] == [{"echo": {"n": 0}}, {"echo": {"n": 1}}]
        assert network.metrics.counter("network.messages") == 4

    def test_accounting_matches_scalar_rpc_loop(self):
        batched, scalar = make_network(), make_network()
        ResilientChannel(batched).rpc_many(self.batch(1, 1, 1))
        channel = ResilientChannel(scalar)
        for call in self.batch(1, 1, 1):
            channel.rpc(call.src, call.dst, call.kind, call.payload)
        assert (
            batched.metrics.counter("network.messages")
            == scalar.metrics.counter("network.messages")
            == 6
        )
        assert batched.metrics.counter("rpc.attempts") == scalar.metrics.counter(
            "rpc.attempts"
        )
