"""Tests for the decomposed multi-hypercube index."""

import pytest

from repro.core.decomposed import DecomposedIndex
from repro.dht.chord import ChordNetwork

SERVICES = {
    "svc-1": frozenset({"type=gpu", "region=eu", "cap=ssd"}),
    "svc-2": frozenset({"type=gpu", "region=us", "cap=ssd"}),
    "svc-3": frozenset({"type=cpu", "region=eu"}),
    "svc-4": frozenset({"type=gpu", "region=eu", "cap=ecc"}),
}


def classifier(keyword: str) -> int:
    return {"type": 0, "region": 1, "cap": 2}[keyword.split("=", 1)[0]]


@pytest.fixture()
def directory():
    dolr = ChordNetwork.build(bits=16, num_nodes=12, seed=31)
    directory = DecomposedIndex(
        dolr, groups=3, dimension_per_group=4, classifier=classifier
    )
    holder = dolr.any_address()
    for service_id, attrs in SERVICES.items():
        directory.insert(service_id, attrs, holder)
    return directory


class TestPartitioning:
    def test_classifier_routes_groups(self, directory):
        assert directory.group_of("type=gpu") == 0
        assert directory.group_of("region=eu") == 1
        assert directory.group_of("cap=ssd") == 2

    def test_project_splits_query(self, directory):
        projections = directory.project({"type=gpu", "region=eu"})
        assert projections == {0: frozenset({"type=gpu"}), 1: frozenset({"region=eu"})}

    def test_hash_partition_default(self):
        dolr = ChordNetwork.build(bits=16, num_nodes=8, seed=32)
        index = DecomposedIndex(dolr, groups=4, dimension_per_group=3)
        groups = {index.group_of(f"kw{i}") for i in range(50)}
        assert groups <= set(range(4))
        assert len(groups) > 1

    def test_classifier_out_of_range_rejected(self):
        dolr = ChordNetwork.build(bits=16, num_nodes=8, seed=33)
        index = DecomposedIndex(
            dolr, groups=2, dimension_per_group=3, classifier=lambda k: 5
        )
        with pytest.raises(ValueError):
            index.group_of("anything")

    def test_invalid_groups(self):
        dolr = ChordNetwork.build(bits=16, num_nodes=8, seed=34)
        with pytest.raises(ValueError):
            DecomposedIndex(dolr, groups=0, dimension_per_group=3)


class TestSearch:
    def test_single_group_query(self, directory):
        result = directory.superset_search({"type=gpu"})
        assert set(result.object_ids) == {"svc-1", "svc-2", "svc-4"}

    def test_cross_group_query_verified(self, directory):
        result = directory.superset_search({"type=gpu", "region=eu"})
        assert set(result.object_ids) == {"svc-1", "svc-4"}
        assert 0 < result.precision <= 1.0

    def test_three_group_query(self, directory):
        result = directory.superset_search({"type=gpu", "region=eu", "cap=ssd"})
        assert set(result.object_ids) == {"svc-1"}

    def test_no_matches(self, directory):
        result = directory.superset_search({"type=quantum"})
        assert result.object_ids == ()

    def test_threshold(self, directory):
        result = directory.superset_search({"type=gpu"}, threshold=2)
        assert len(result.objects) == 2

    def test_results_carry_full_keywords(self, directory):
        result = directory.superset_search({"region=eu"})
        for found in result.objects:
            assert found.keywords == SERVICES[found.object_id]


class TestMaintenance:
    def test_storage_multiplier(self, directory):
        expected = sum(len(directory.project(a)) for a in SERVICES.values()) / len(SERVICES)
        assert directory.storage_multiplier() == pytest.approx(expected)

    def test_delete_removes_everywhere(self, directory):
        holder = directory.dolr.any_address()
        removed = directory.delete("svc-1", holder)
        assert removed == len(directory.project(SERVICES["svc-1"]))
        result = directory.superset_search({"type=gpu"})
        assert "svc-1" not in result.object_ids

    def test_delete_unknown(self, directory):
        assert directory.delete("ghost", directory.dolr.any_address()) == 0

    def test_second_replica_not_reindexed(self, directory):
        holders = directory.dolr.addresses()
        written = directory.insert("svc-1", SERVICES["svc-1"], holders[-1])
        assert written == 0  # replica reference only
