"""Mixed-codec interoperability (docs/protocol.md §18).

A binary-preferring node must speak v2 with binary peers and fall back
to v1 JSON with pinned peers — on the *same* deployment, per
connection, with zero configuration agreement.  The acceptance bar is
exact result parity: a superset search answered across a JSON-v1 ×
binary-v2 boundary returns byte-for-byte the same results as a
homogeneous deployment.  The WAL side of the same story: a data
directory written under one codec recovers under the other.
"""

import struct
import threading

import pytest

from repro.core.config import ServiceConfig
from repro.net.aio import AsyncioTransport
from repro.net.node import NodeDaemon, cluster_addresses
from repro.store.file import FileStore
from repro.store.wal import decode_records

CORPUS = [
    ("paper.pdf", {"dht", "search", "p2p"}),
    ("slides.ppt", {"dht", "search"}),
    ("notes.txt", {"p2p", "overlay"}),
    ("code.tar", {"dht", "overlay", "chord"}),
    ("data.csv", {"search"}),
    ("thesis.pdf", {"dht", "p2p", "overlay", "search"}),
]

QUERIES = [{"dht"}, {"search"}, {"p2p"}, {"dht", "search"}, {"nosuch"}]


def echo_handler(message):
    return {"echo": message.payload, "kind": message.kind}


class TestTransportNegotiation:
    def paired(self, codec_a: str, codec_b: str):
        """Two single-address transports cross-dialling each other."""
        a = AsyncioTransport(rpc_timeout=5.0, serve_addresses={1}, codec=codec_a)
        b = AsyncioTransport(rpc_timeout=5.0, serve_addresses={2}, codec=codec_b)
        a.register(1, echo_handler)
        b.register(2, echo_handler)
        a.register(2, echo_handler)  # shadow: routing table entry
        b.register(1, echo_handler)
        a.peers[2] = b.endpoints[2]
        b.peers[1] = a.endpoints[1]
        return a, b

    PAYLOAD = {"keywords": frozenset({"dht", "p2p"}), "rows": [(1, "a"), (2, "b")]}

    @pytest.mark.parametrize(
        "codec_a,codec_b",
        [("binary", "binary"), ("json", "binary"), ("binary", "json"), ("json", "json")],
    )
    def test_rpc_parity_across_any_codec_pairing(self, codec_a, codec_b):
        a, b = self.paired(codec_a, codec_b)
        try:
            expected = {"echo": self.PAYLOAD, "kind": "test.echo"}
            assert a.rpc(1, 2, "test.echo", self.PAYLOAD) == expected
            assert b.rpc(2, 1, "test.echo", self.PAYLOAD) == expected
        finally:
            a.close()
            b.close()

    def test_binary_pair_sends_fewer_bytes_than_json_pair(self):
        """The observable proof the upgrade actually happened: identical
        traffic, strictly fewer bytes on the negotiated-binary pair."""
        totals = {}
        for codec in ("binary", "json"):
            a, b = self.paired(codec, codec)
            try:
                for _ in range(10):
                    a.rpc(1, 2, "test.echo", self.PAYLOAD)
                totals[codec] = a.metrics.counter("net.bytes_sent")
            finally:
                a.close()
                b.close()
        assert totals["binary"] < totals["json"]

    def test_json_pinned_peer_never_receives_v2(self):
        """A binary node dialling a pinned-JSON node opens with a v1
        advert; the pinned node replies v1 and the connection stays
        JSON both ways — every frame the pinned side parses is v1."""
        a, b = self.paired("binary", "json")
        try:
            for i in range(5):
                assert a.rpc(1, 2, "test.echo", {"i": i})["echo"] == {"i": i}
            # And the reverse direction: the pinned node's own requests
            # are v1, answered in v1 by the binary node.
            for i in range(5):
                assert b.rpc(2, 1, "test.echo", {"i": i})["echo"] == {"i": i}
        finally:
            a.close()
            b.close()


class TestMixedDeploymentParity:
    def run_deployment(self, codecs: dict[int, str]) -> dict:
        """Spin one daemon per address (codec per ``codecs``), publish
        the corpus at the first, search from every daemon."""
        base = ServiceConfig(dimension=6, num_dht_nodes=4, seed=7)
        addresses = cluster_addresses(base)
        daemons = {
            address: NodeDaemon(
                ServiceConfig(
                    dimension=6, num_dht_nodes=4, seed=7,
                    codec=codecs.get(address, "binary"),
                ),
                address,
            )
            for address in addresses
        }
        try:
            for address, daemon in daemons.items():
                for other, peer in daemons.items():
                    if other != address:
                        daemon.transport.peers[other] = peer.endpoint
            publisher = daemons[addresses[0]]
            for object_id, keywords in CORPUS:
                publisher.service.publish(object_id, keywords, holder=addresses[0])
            outcomes = {}
            for address, daemon in daemons.items():
                for i, query in enumerate(QUERIES):
                    result = daemon.service.superset_search(query, origin=address)
                    outcomes[(address, i)] = result.results()
            return outcomes
        finally:
            for daemon in daemons.values():
                daemon.close()

    def test_superset_search_parity_json_x_binary(self):
        """Half the deployment pinned to JSON v1, half binary v2: every
        (origin, query) answer matches the all-binary deployment."""
        base = ServiceConfig(dimension=6, num_dht_nodes=4, seed=7)
        addresses = cluster_addresses(base)
        mixed_codecs = {
            address: ("json" if i % 2 == 0 else "binary")
            for i, address in enumerate(addresses)
        }
        homogeneous = self.run_deployment({})
        mixed = self.run_deployment(mixed_codecs)
        assert mixed == homogeneous
        assert any(results for results in homogeneous.values())  # non-vacuous
        assert not any(
            thread.name.startswith("repro-net") for thread in threading.enumerate()
        )


class TestWalCodecInterop:
    def seed_store(self, path, codec: str) -> None:
        store = FileStore(path, codec=codec)
        store.recover()
        store.record_put("default", 3, ("dht", "search"), "paper.pdf")
        store.record_put("default", 5, ("p2p",), "notes.txt")
        store.record_ref_put("paper.pdf", 42)
        store.close()

    def test_json_directory_reopens_under_binary(self, tmp_path):
        self.seed_store(tmp_path, "json")
        store = FileStore(tmp_path, codec="binary")
        state = store.recover()
        assert state.wal_records == 3
        assert not state.truncated
        # New appends go out binary into the same WAL file...
        store.record_put("default", 3, ("overlay",), "late.pdf")
        store.close()
        # ...and a third open replays the mixed file completely.
        reopened = FileStore(tmp_path, codec="binary")
        state = reopened.recover()
        assert state.wal_records == 4
        assert {"paper.pdf", "notes.txt", "late.pdf"} <= {
            object_id
            for table in state.tables.values()
            for object_ids in table.values()
            for object_id in object_ids
        }
        reopened.close()

    def test_binary_directory_reopens_under_json(self, tmp_path):
        self.seed_store(tmp_path, "binary")
        store = FileStore(tmp_path, codec="json")
        state = store.recover()
        assert state.wal_records == 3
        assert not state.truncated
        store.close()

    def test_mixed_wal_file_really_is_mixed(self, tmp_path):
        """The interop above must not come from silent transcoding: the
        bytes on disk hold v1 records next to v2 records."""
        self.seed_store(tmp_path, "json")
        store = FileStore(tmp_path, codec="binary")
        store.recover()
        store.record_put("default", 3, ("overlay",), "late.pdf")
        store.close()
        data = (tmp_path / "wal.log").read_bytes()
        decoded = decode_records(data)
        assert len(decoded.records) == 4
        assert not decoded.truncated
        # Version bytes live right after each record's 8-byte frame
        # header (length + crc): both 1 (JSON) and 2 (binary) present.
        versions = []
        position = 0
        while position < len(data):
            (length,) = struct.unpack_from("!I", data, position)
            versions.append(data[position + 8])
            position += 8 + length
        assert 1 in versions and 2 in versions
