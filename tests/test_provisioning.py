"""Tests for application provisioning and remaining substrate seams."""


from repro.baselines.dii import DistributedInvertedIndex
from repro.core.index import HypercubeIndex, IndexShard
from repro.dht.chord import ChordNetwork
from repro.dht.kademlia import KademliaNetwork
from repro.hypercube.hypercube import Hypercube
from repro.sim.network import Message


class CountingApp:
    prefix = "count"

    def __init__(self) -> None:
        self.calls = 0

    def handle(self, node, message: Message):
        self.calls += 1
        return {"calls": self.calls}


class TestApplicationProvisioning:
    def test_joiner_gets_installed_applications(self):
        ring = ChordNetwork.build(bits=16, num_nodes=6, seed=201)
        ring.install_everywhere(lambda node: CountingApp())
        newcomer = next(a for a in range(65536) if a not in ring.nodes)
        ring.join(newcomer, ring.any_address())
        assert ring.node(newcomer).has_application("count")

    def test_joiner_gets_index_shard(self):
        ring = ChordNetwork.build(bits=16, num_nodes=6, seed=202)
        HypercubeIndex(Hypercube(5), ring)
        newcomer = next(a for a in range(65536) if a not in ring.nodes)
        ring.join(newcomer, ring.any_address())
        node = ring.node(newcomer)
        assert node.has_application("hindex")
        assert isinstance(node.application("hindex"), IndexShard)

    def test_kademlia_joiner_provisioned_too(self):
        overlay = KademliaNetwork.build(bits=16, num_nodes=6, seed=203)
        HypercubeIndex(Hypercube(5), overlay)
        newcomer = next(a for a in range(65536) if a not in overlay.nodes)
        overlay.join(newcomer, overlay.any_address())
        assert overlay.node(newcomer).has_application("hindex")

    def test_ensure_application_does_not_clobber(self):
        ring = ChordNetwork.build(bits=16, num_nodes=4, seed=204)
        index_a = HypercubeIndex(Hypercube(4), ring, namespace="a")
        shard_before = index_a.shard_at(ring.any_address())
        HypercubeIndex(Hypercube(4), ring, namespace="b")
        assert index_a.shard_at(ring.any_address()) is shard_before

    def test_coexisting_apps_dispatch_independently(self):
        ring = ChordNetwork.build(bits=16, num_nodes=4, seed=205)
        HypercubeIndex(Hypercube(4), ring)
        DistributedInvertedIndex(ring)
        node = ring.node(ring.any_address())
        assert node.has_application("hindex")
        assert node.has_application("dii")

    def test_install_replaces_same_prefix(self):
        ring = ChordNetwork.build(bits=16, num_nodes=2, seed=206)
        node = ring.node(ring.any_address())
        first, second = CountingApp(), CountingApp()
        node.install(first)
        node.install(second)
        assert node.application("count") is second


class TestShardIntrospection:
    def test_entries_sorted(self):
        shard = IndexShard()
        key = ("main", 3)
        shard.put(key, frozenset({"b", "c"}), "late")
        shard.put(key, frozenset({"a"}), "early")
        entries = shard.entries(key)
        assert [sorted(e.keywords) for e in entries] == [["a"], ["b", "c"]]

    def test_cache_stats_aggregate(self):
        shard = IndexShard(cache_capacity=2)
        shard.cache_get("main", 1, frozenset({"x"}), None)  # miss
        shard.cache_put("main", 2, frozenset({"y"}), (("o", frozenset({"y"})),), complete=True)
        shard.cache_get("main", 2, frozenset({"y"}), None)  # hit
        hits, misses = shard.cache_stats()
        assert hits == 1
        assert misses == 1

    def test_cache_budget_shared_across_hosted_tables(self):
        # One physical node hosting many (namespace, logical) tables gets
        # ONE cache budget, not one per table: entries for any number of
        # hosted tables never occupy more than cache_capacity units.
        shard = IndexShard(cache_capacity=3)
        for logical in range(10):
            shard.cache_put(
                "main",
                logical,
                frozenset({f"k{logical}"}),
                ((f"o{logical}", frozenset({f"k{logical}"})),),
                complete=True,
            )
        assert shard.cache.used <= 3
        assert len(shard.cache) == 3

    def test_cache_keys_namespaced_per_table(self):
        shard = IndexShard(cache_capacity=8)
        query = frozenset({"q"})
        shard.cache_put("main", 5, query, (("a", query),), complete=True)
        shard.cache_put("other", 5, query, (("b", query),), complete=True)
        assert shard.cache_get("main", 5, query, None).results[0][0] == "a"
        assert shard.cache_get("other", 5, query, None).results[0][0] == "b"


class TestTraceCounters:
    def test_request_count_excludes_replies(self):
        ring = ChordNetwork.build(bits=16, num_nodes=8, seed=207)
        a, b = ring.addresses()[:2]
        with ring.network.trace() as trace:
            ring.network.rpc(a, b, "chord.get_predecessor", {})
        assert trace.message_count == 2
        assert trace.request_count == 1

    def test_kind_counter_accumulates(self):
        ring = ChordNetwork.build(bits=16, num_nodes=8, seed=208)
        a, b = ring.addresses()[:2]
        before = ring.network.kind_counts["chord.get_predecessor"]
        ring.network.rpc(a, b, "chord.get_predecessor", {})
        assert ring.network.kind_counts["chord.get_predecessor"] == before + 2

    def test_received_counter_tracks_destination(self):
        ring = ChordNetwork.build(bits=16, num_nodes=8, seed=209)
        a, b = ring.addresses()[:2]
        before = ring.network.received_counts[b]
        ring.network.rpc(a, b, "chord.get_predecessor", {})
        assert ring.network.received_counts[b] == before + 1
