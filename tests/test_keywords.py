"""Unit tests for keyword hashing and the F_h mapping."""

import pytest

from repro.core.keywords import (
    KeywordHasher,
    KeywordSetMapper,
    normalize_keyword,
    normalize_keywords,
    normalize_prefix,
)
from repro.hypercube.hypercube import Hypercube


class TestNormalization:
    def test_casefold_and_strip(self):
        assert normalize_keyword("  MP3 ") == "mp3"

    def test_unicode_nfkc(self):
        # Full-width latin normalizes to ASCII under NFKC.
        assert normalize_keyword("ＭＰ３") == "mp3"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normalize_keyword("   ")

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            normalize_keyword(42)

    def test_set_normalization_dedups(self):
        assert normalize_keywords(["Jazz", "jazz ", "JAZZ"]) == frozenset({"jazz"})

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            normalize_keywords([])


class TestUnicodeEdgeCases:
    """Confusable forms must collapse to one canonical spelling, or two
    peers publishing 'the same' keyword will land on different trie rows
    and different hypercube nodes."""

    def test_nfkc_ligature_confusables(self):
        # U+FB01 LATIN SMALL LIGATURE FI decomposes under NFKC.
        assert normalize_keyword("ﬁle") == "file"
        assert normalize_keyword("oﬃce") == "office"  # U+FB03 ffi

    def test_fullwidth_forms_collapse(self):
        assert normalize_keyword("ｊａｚｚ") == "jazz"
        assert normalize_keyword("№５") == "no5"  # U+2116 NUMERO SIGN

    def test_eszett_casefolds_to_ss(self):
        assert normalize_keyword("ß") == "ss"
        assert normalize_keyword("Straße") == "strasse"
        # Capital sharp S (U+1E9E) folds the same way.
        assert normalize_keyword("STRAẞE") == "strasse"

    def test_zero_width_space_is_stripped(self):
        assert normalize_keyword("ja​zz") == "jazz"  # U+200B ZERO WIDTH SPACE

    def test_word_joiner_and_bom_are_stripped(self):
        assert normalize_keyword("ja⁠zz") == "jazz"  # WORD JOINER
        assert normalize_keyword("﻿jazz") == "jazz"  # BOM / ZWNBSP
        assert normalize_keyword("ja‍zz") == "jazz"  # ZERO WIDTH JOINER
        assert normalize_keyword("ja‌zz") == "jazz"  # ZERO WIDTH NON-JOINER

    def test_only_format_characters_is_empty(self):
        with pytest.raises(ValueError):
            normalize_keyword("​‍﻿")

    def test_ascii_fast_path_unchanged(self):
        # Plain ASCII must come out exactly as casefold+strip — the path
        # the published figures were generated through.
        for word in ("jazz", "MP3", "  mixed Case  "):
            assert normalize_keyword(word) == word.casefold().strip()

    def test_prefix_pipeline_agrees_with_keyword_pipeline(self):
        # Invariant the prefix directory depends on: normalizing a raw
        # prefix of a word yields a prefix of the normalized word.
        for word, cut in (("Straße", 5), ("ﬁle", 2), ("ｊａｚｚ", 2), ("ja​zz", 3)):
            normalized = normalize_keyword(word)
            prefix = normalize_prefix(word[:cut])
            assert normalized.startswith(prefix), (word, cut, normalized, prefix)

    def test_prefix_rejects_empty_and_non_string(self):
        with pytest.raises(ValueError):
            normalize_prefix("   ")
        with pytest.raises(TypeError):
            normalize_prefix(7)


class TestKeywordHasher:
    def test_range(self):
        hasher = KeywordHasher(10)
        for word in ("alpha", "beta", "gamma", "delta"):
            assert 0 <= hasher(word) < 10

    def test_deterministic(self):
        assert KeywordHasher(16)("chord") == KeywordHasher(16)("chord")

    def test_normalization_applied(self):
        hasher = KeywordHasher(12)
        assert hasher(" MP3 ") == hasher("mp3")

    def test_salts_give_independent_functions(self):
        h1 = KeywordHasher(64, salt="a")
        h2 = KeywordHasher(64, salt="b")
        differing = sum(h1(f"w{i}") != h2(f"w{i}") for i in range(100))
        assert differing > 80

    def test_roughly_uniform(self):
        hasher = KeywordHasher(8)
        buckets = [0] * 8
        for i in range(4000):
            buckets[hasher(f"word-{i}")] += 1
        assert min(buckets) > 350
        assert max(buckets) < 650

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            KeywordHasher(0)

    def test_dimensions_of(self):
        hasher = KeywordHasher(8)
        mapping = hasher.dimensions_of(["A", "b"])
        assert set(mapping) == {"a", "b"}
        assert mapping["a"] == hasher("a")


class TestKeywordSetMapper:
    def test_node_bits_are_union_of_keyword_dims(self):
        cube = Hypercube(10)
        mapper = KeywordSetMapper(cube)
        keywords = {"p2p", "dht", "search"}
        node = mapper.node_for(keywords)
        expected = 0
        for keyword in keywords:
            expected |= 1 << mapper.hasher(keyword)
        assert node == expected

    def test_monotone_under_superset(self):
        # K ⊆ K' ⇒ F_h(K') contains F_h(K): the heart of Lemma 3.1.
        cube = Hypercube(8)
        mapper = KeywordSetMapper(cube)
        small = mapper.node_for({"a", "b"})
        large = mapper.node_for({"a", "b", "c", "d"})
        assert cube.contains_node(large, small)

    def test_one_count_bounded_by_set_size(self):
        mapper = KeywordSetMapper(Hypercube(12))
        for size in (1, 3, 7):
            keywords = {f"kw{i}" for i in range(size)}
            assert 1 <= mapper.one_count(keywords) <= min(size, 12)

    def test_single_keyword_weight_one(self):
        mapper = KeywordSetMapper(Hypercube(10))
        assert mapper.one_count({"solo"}) == 1

    def test_order_independent(self):
        mapper = KeywordSetMapper(Hypercube(10))
        assert mapper.node_for(["x", "y", "z"]) == mapper.node_for(["z", "x", "y"])

    def test_describes(self):
        mapper = KeywordSetMapper(Hypercube(8))
        assert mapper.describes({"a"}, {"a", "b"})
        assert not mapper.describes({"a", "c"}, {"a", "b"})

    def test_mismatched_hasher_rejected(self):
        with pytest.raises(ValueError):
            KeywordSetMapper(Hypercube(8), KeywordHasher(10))

    def test_mapper_matches_across_instances(self):
        # Any two peers with the same r and salt must agree on F_h.
        a = KeywordSetMapper(Hypercube(9))
        b = KeywordSetMapper(Hypercube(9))
        assert a.node_for({"m", "n"}) == b.node_for({"m", "n"})
