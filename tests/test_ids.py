"""Unit tests for the DHT identifier space."""

import pytest

from repro.dht.ids import IdSpace


class TestBasics:
    def test_size(self):
        assert IdSpace(8).size == 256

    def test_contains(self):
        space = IdSpace(4)
        assert space.contains(0)
        assert space.contains(15)
        assert not space.contains(16)
        assert not space.contains(-1)

    def test_check_raises(self):
        with pytest.raises(ValueError):
            IdSpace(4).check(16)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            IdSpace(0)
        with pytest.raises(ValueError):
            IdSpace(161)

    def test_hash_name_in_space(self):
        space = IdSpace(12)
        for name in ("a", "b", "c"):
            assert space.contains(space.hash_name(name))

    def test_hash_name_salted(self):
        space = IdSpace(32)
        assert space.hash_name("x", salt="s1") != space.hash_name("x", salt="s2")

    def test_random_id_seeded(self):
        space = IdSpace(16)
        assert space.random_id(3) == space.random_id(3)
        assert space.contains(space.random_id(3))


class TestRingGeometry:
    def test_clockwise_distance(self):
        space = IdSpace(4)
        assert space.clockwise_distance(2, 5) == 3
        assert space.clockwise_distance(5, 2) == 13  # wraps
        assert space.clockwise_distance(7, 7) == 0

    def test_open_interval_plain(self):
        space = IdSpace(4)
        assert space.in_open_interval(3, 2, 5)
        assert not space.in_open_interval(2, 2, 5)
        assert not space.in_open_interval(5, 2, 5)

    def test_open_interval_wrapping(self):
        space = IdSpace(4)
        assert space.in_open_interval(15, 14, 1)
        assert space.in_open_interval(0, 14, 1)
        assert not space.in_open_interval(2, 14, 1)

    def test_open_interval_degenerate(self):
        # left == right: the whole ring minus the endpoint.
        space = IdSpace(4)
        assert space.in_open_interval(5, 3, 3)
        assert not space.in_open_interval(3, 3, 3)

    def test_half_open_interval(self):
        space = IdSpace(4)
        assert space.in_half_open_interval(5, 2, 5)
        assert not space.in_half_open_interval(2, 2, 5)
        assert space.in_half_open_interval(0, 14, 0)


class TestXorGeometry:
    def test_xor_distance_symmetric(self):
        space = IdSpace(8)
        assert space.xor_distance(12, 200) == space.xor_distance(200, 12)

    def test_xor_distance_identity(self):
        assert IdSpace(8).xor_distance(42, 42) == 0

    def test_xor_unique_distances_from_point(self):
        # For fixed u, v -> d(u, v) is a bijection: Kademlia's key fact.
        space = IdSpace(4)
        distances = {space.xor_distance(5, v) for v in range(16)}
        assert distances == set(range(16))

    def test_bucket_index(self):
        space = IdSpace(8)
        assert space.bucket_index(0, 1) == 0
        assert space.bucket_index(0, 0b10000000) == 7
        assert space.bucket_index(0b101, 0b100) == 0

    def test_bucket_index_self_rejected(self):
        with pytest.raises(ValueError):
            IdSpace(8).bucket_index(3, 3)
