"""Tests for the generalized DOLR contract (Section 2.1)."""

import pytest

from repro.dht.chord import ChordNetwork
from repro.dht.kademlia import KademliaNetwork
from repro.sim.network import Message


@pytest.fixture(params=["chord", "kademlia"])
def dolr(request):
    """Both DHTs satisfy the same DOLR contract — run everything twice."""
    if request.param == "chord":
        return ChordNetwork.build(bits=16, num_nodes=20, seed=71)
    return KademliaNetwork.build(bits=16, num_nodes=20, seed=71)


class TestMappingL:
    def test_object_key_deterministic(self, dolr):
        assert dolr.object_key("song.mp3") == dolr.object_key("song.mp3")

    def test_object_key_in_space(self, dolr):
        for name in ("a", "b", "c"):
            assert dolr.space.contains(dolr.object_key(name))

    def test_every_key_has_exactly_one_owner(self, dolr):
        for key in range(0, dolr.space.size, 4999):
            owner = dolr.local_owner(key)
            assert owner in dolr.nodes


class TestReferenceOperations:
    def test_insert_read(self, dolr):
        holder = dolr.any_address()
        assert dolr.insert("obj", holder) is True
        assert dolr.read("obj") == [holder]

    def test_read_missing(self, dolr):
        assert dolr.read("never-published") == []

    def test_reference_stored_at_l_sigma(self, dolr):
        holder = dolr.any_address()
        dolr.insert("target", holder)
        owner = dolr.local_owner(dolr.object_key("target"))
        assert "target" in dolr.nodes[owner].refs

    def test_delete_last_copy(self, dolr):
        holder = dolr.any_address()
        dolr.insert("obj", holder)
        assert dolr.delete("obj", holder) is True
        assert dolr.read("obj") == []

    def test_multiple_replicas(self, dolr):
        a, b, c = dolr.addresses()[:3]
        assert dolr.insert("shared", a) is True
        assert dolr.insert("shared", b) is False
        assert dolr.insert("shared", c) is False
        assert sorted(dolr.read("shared")) == sorted([a, b, c])
        assert dolr.delete("shared", b) is False
        assert sorted(dolr.read("shared")) == sorted([a, c])

    def test_operations_pay_messages(self, dolr):
        holder = dolr.any_address()
        with dolr.network.trace() as trace:
            dolr.insert("costly", holder)
        assert trace.message_count > 0


class TestRoutedRpc:
    def test_route_rpc_reaches_owner(self, dolr):
        key = 12345
        result, route = dolr.route_rpc(
            key, "dolr.read_ref", {"object_id": "x"}, origin=dolr.any_address()
        )
        assert route.owner == dolr.local_owner(key) or dolr.network.is_alive(route.owner)
        assert result == {"holders": []}

    def test_rpc_at_direct(self, dolr):
        a, b = dolr.addresses()[:2]
        result = dolr.rpc_at(a, b, "dolr.read_ref", {"object_id": "y"})
        assert result == {"holders": []}


class TestApplications:
    def test_install_and_dispatch(self, dolr):
        class EchoApp:
            prefix = "echo"

            def handle(self, node, message: Message):
                return {"node": node.address, "value": message.payload["value"]}

        dolr.install_everywhere(lambda node: EchoApp())
        a, b = dolr.addresses()[:2]
        reply = dolr.network.rpc(a, b, "echo.ping", {"value": 3})
        assert reply == {"node": b, "value": 3}

    def test_unknown_application_kind_raises(self, dolr):
        a, b = dolr.addresses()[:2]
        with pytest.raises(LookupError):
            dolr.network.rpc(a, b, "nosuch.op", {})

    def test_unknown_dolr_kind_raises(self, dolr):
        a, b = dolr.addresses()[:2]
        with pytest.raises(LookupError):
            dolr.network.rpc(a, b, "dolr.transmute", {})

    def test_has_application(self, dolr):
        node = dolr.node(dolr.any_address())
        assert not node.has_application("ghost")
