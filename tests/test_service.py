"""Tests for the high-level KeywordSearchService façade."""

import pytest

from repro.core.config import CachePolicy, DhtKind, SearchOptions, ServiceConfig
from repro.core.search import TraversalOrder
from repro.core.service import KeywordSearchService
from repro.sim.resilience import BreakerPolicy, RetryPolicy

from tests.conftest import CATALOGUE


class TestCreation:
    def test_chord_backend(self):
        svc = KeywordSearchService.create(
            ServiceConfig(dimension=5, num_dht_nodes=8, dht=DhtKind.CHORD, seed=1)
        )
        assert len(svc.index.dolr.nodes) == 8

    def test_kademlia_backend(self):
        svc = KeywordSearchService.create(
            ServiceConfig(dimension=5, num_dht_nodes=8, dht="kademlia", seed=1)
        )
        svc.publish("x", {"a"})
        assert svc.pin_search({"a"}).object_ids == ("x",)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            ServiceConfig(dimension=5, num_dht_nodes=8, dht="napster")

    def test_unknown_cache_policy(self):
        with pytest.raises(ValueError):
            ServiceConfig(dimension=5, num_dht_nodes=8, cache_policy="random")


class TestServiceConfig:
    def test_strings_coerce_to_enums(self):
        config = ServiceConfig(
            dimension=5, num_dht_nodes=8, dht="pastry", cache_policy="lru"
        )
        assert config.dht is DhtKind.PASTRY
        assert config.cache_policy is CachePolicy.LRU

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(dimension=0, num_dht_nodes=8)
        with pytest.raises(ValueError):
            ServiceConfig(dimension=5, num_dht_nodes=8, cache_capacity=-1)
        with pytest.raises(ValueError):
            SearchOptions(threshold=0)

    def test_with_resilience(self):
        base = ServiceConfig(dimension=5, num_dht_nodes=8)
        assert base.resilience is None
        hardened = base.with_resilience(RetryPolicy.default(), BreakerPolicy())
        assert hardened.resilience == RetryPolicy.default()
        assert hardened.breaker == BreakerPolicy()
        assert base.resilience is None  # original untouched

    def test_config_installs_resilient_channel(self):
        svc = KeywordSearchService.create(
            ServiceConfig(
                dimension=5,
                num_dht_nodes=8,
                seed=1,
                resilience=RetryPolicy(max_attempts=2),
                breaker=BreakerPolicy(failure_threshold=2),
            )
        )
        assert svc.dolr.channel.resilient
        assert svc.dolr.channel.policy.max_attempts == 2
        assert svc.searcher.degrades

    def test_config_is_recorded(self):
        config = ServiceConfig(dimension=5, num_dht_nodes=8, seed=1)
        svc = KeywordSearchService.create(config)
        assert svc.config is config


class TestLegacyShim:
    def test_legacy_keywords_warn_and_work(self):
        with pytest.warns(DeprecationWarning, match="ServiceConfig"):
            svc = KeywordSearchService.create(
                dimension=5, num_dht_nodes=8, dht="chord", seed=1
            )
        svc.publish("x", {"a"})
        assert svc.pin_search({"a"}).results() == ("x",)

    def test_legacy_unknown_backend_message(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="dht must be one of"):
                KeywordSearchService.create(dimension=5, num_dht_nodes=8, dht="napster")

    def test_legacy_unknown_cache_policy_message(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="cache_policy must be one of"):
                KeywordSearchService.create(
                    dimension=5, num_dht_nodes=8, cache_policy="random"
                )

    def test_config_and_legacy_kwargs_conflict(self):
        with pytest.raises(TypeError, match="not both"):
            KeywordSearchService.create(
                ServiceConfig(dimension=5, num_dht_nodes=8), dimension=5
            )


class TestPublishing:
    def test_publish_and_pin(self, service):
        result = service.pin_search({"mp3", "jazz", "saxophone"})
        assert result.object_ids == ("take-five",)

    def test_double_publish_same_holder_rejected(self, service):
        record = next(iter(service._published.values()))
        with pytest.raises(ValueError):
            service.publish(record.object_id, record.keywords, holder=record.holder)

    def test_replica_on_other_holder_allowed(self, service):
        holders = service.index.dolr.addresses()
        service.publish("take-five", CATALOGUE["take-five"], holder=holders[-1])
        assert len(service.read("take-five")) == 2

    def test_unpublish_unknown_rejected(self, service):
        with pytest.raises(KeyError):
            service.unpublish("ghost", holder=0)

    def test_unpublish_removes_from_search(self, service):
        record = service._published[
            next(k for k in service._published if k[0] == "moonlight")
        ]
        service.unpublish("moonlight", holder=record.holder)
        assert service.pin_search(CATALOGUE["moonlight"]).object_ids == ()

    def test_published_count(self, service):
        assert service.published_count() == len(CATALOGUE)

    def test_read_returns_holders(self, service):
        holders = service.read("take-five")
        assert len(holders) == 1


class TestSearchDelegation:
    def test_superset_search(self, service):
        result = service.superset_search({"jazz"})
        expected = {o for o, kw in CATALOGUE.items() if "jazz" in kw}
        assert set(result.object_ids) == expected

    def test_cumulative_search(self, service):
        session = service.cumulative_search({"jazz"})
        everything = session.drain()
        expected = {o for o, kw in CATALOGUE.items() if "jazz" in kw}
        assert {f.object_id for f in everything} == expected

    def test_search_options_object(self, service):
        options = SearchOptions(threshold=1, order=TraversalOrder.BOTTOM_UP)
        result = service.search({"jazz"}, options)
        assert len(result.results()) == 1

    def test_results_accessor_matches_object_ids(self, service):
        pin = service.pin_search({"mp3", "jazz", "saxophone"})
        assert pin.results() == pin.object_ids
        superset = service.superset_search({"jazz"})
        assert superset.results() == superset.object_ids

    def test_resilience_metrics_exposed(self, service):
        service.superset_search({"jazz"})
        metrics = service.resilience_metrics()
        assert metrics.get("rpc.attempts", 0) > 0

    def test_use_cache_defaults_to_capacity(self):
        svc = KeywordSearchService.create(
            ServiceConfig(dimension=5, num_dht_nodes=8, seed=2, cache_capacity=4)
        )
        svc.publish("x", {"a", "b"})
        svc.superset_search({"a"})
        result = svc.superset_search({"a"})
        assert result.cache_hit

    def test_no_cache_when_capacity_zero(self, service):
        service.superset_search({"jazz"})
        result = service.superset_search({"jazz"})
        assert not result.cache_hit

    def test_messages_counter_monotone(self, service):
        before = service.messages_sent()
        service.superset_search({"jazz"})
        assert service.messages_sent() > before

    def test_cube_property(self, service):
        assert service.cube.dimension == 6
