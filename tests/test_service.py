"""Tests for the high-level KeywordSearchService façade."""

import pytest

from repro.core.service import KeywordSearchService

from tests.conftest import CATALOGUE


class TestCreation:
    def test_chord_backend(self):
        svc = KeywordSearchService.create(dimension=5, num_dht_nodes=8, dht="chord", seed=1)
        assert len(svc.index.dolr.nodes) == 8

    def test_kademlia_backend(self):
        svc = KeywordSearchService.create(
            dimension=5, num_dht_nodes=8, dht="kademlia", seed=1
        )
        svc.publish("x", {"a"})
        assert svc.pin_search({"a"}).object_ids == ("x",)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            KeywordSearchService.create(dimension=5, num_dht_nodes=8, dht="napster")

    def test_unknown_cache_policy(self):
        with pytest.raises(ValueError):
            KeywordSearchService.create(
                dimension=5, num_dht_nodes=8, cache_policy="random"
            )


class TestPublishing:
    def test_publish_and_pin(self, service):
        result = service.pin_search({"mp3", "jazz", "saxophone"})
        assert result.object_ids == ("take-five",)

    def test_double_publish_same_holder_rejected(self, service):
        record = next(iter(service._published.values()))
        with pytest.raises(ValueError):
            service.publish(record.object_id, record.keywords, holder=record.holder)

    def test_replica_on_other_holder_allowed(self, service):
        holders = service.index.dolr.addresses()
        service.publish("take-five", CATALOGUE["take-five"], holder=holders[-1])
        assert len(service.read("take-five")) == 2

    def test_unpublish_unknown_rejected(self, service):
        with pytest.raises(KeyError):
            service.unpublish("ghost", holder=0)

    def test_unpublish_removes_from_search(self, service):
        record = service._published[
            next(k for k in service._published if k[0] == "moonlight")
        ]
        service.unpublish("moonlight", holder=record.holder)
        assert service.pin_search(CATALOGUE["moonlight"]).object_ids == ()

    def test_published_count(self, service):
        assert service.published_count() == len(CATALOGUE)

    def test_read_returns_holders(self, service):
        holders = service.read("take-five")
        assert len(holders) == 1


class TestSearchDelegation:
    def test_superset_search(self, service):
        result = service.superset_search({"jazz"})
        expected = {o for o, kw in CATALOGUE.items() if "jazz" in kw}
        assert set(result.object_ids) == expected

    def test_cumulative_search(self, service):
        session = service.cumulative_search({"jazz"})
        everything = session.drain()
        expected = {o for o, kw in CATALOGUE.items() if "jazz" in kw}
        assert {f.object_id for f in everything} == expected

    def test_use_cache_defaults_to_capacity(self):
        svc = KeywordSearchService.create(
            dimension=5, num_dht_nodes=8, seed=2, cache_capacity=4
        )
        svc.publish("x", {"a", "b"})
        svc.superset_search({"a"})
        result = svc.superset_search({"a"})
        assert result.cache_hit

    def test_no_cache_when_capacity_zero(self, service):
        service.superset_search({"jazz"})
        result = service.superset_search({"jazz"})
        assert not result.cache_hit

    def test_messages_counter_monotone(self, service):
        before = service.messages_sent()
        service.superset_search({"jazz"})
        assert service.messages_sent() > before

    def test_cube_property(self, service):
        assert service.cube.dimension == 6
