"""Unit tests for repro.util.bitops."""

import pytest

from repro.util import bitops


class TestPopcount:
    def test_zero(self):
        assert bitops.popcount(0) == 0

    def test_all_ones(self):
        assert bitops.popcount(0b1111) == 4

    def test_paper_example(self):
        assert bitops.popcount(0b010100) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bitops.popcount(-1)


class TestBitAccess:
    def test_get_bit(self):
        assert bitops.get_bit(0b0100, 2) == 1
        assert bitops.get_bit(0b0100, 1) == 0

    def test_set_bit(self):
        assert bitops.set_bit(0b0100, 0) == 0b0101

    def test_set_bit_idempotent(self):
        assert bitops.set_bit(0b0100, 2) == 0b0100

    def test_clear_bit(self):
        assert bitops.clear_bit(0b0101, 0) == 0b0100

    def test_clear_bit_idempotent(self):
        assert bitops.clear_bit(0b0100, 0) == 0b0100

    def test_flip_bit_moves_to_neighbor(self):
        assert bitops.flip_bit(0b0100, 1) == 0b0110

    def test_flip_twice_is_identity(self):
        assert bitops.flip_bit(bitops.flip_bit(0b1010, 3), 3) == 0b1010

    def test_negative_position_rejected(self):
        for fn in (bitops.get_bit, bitops.set_bit, bitops.clear_bit, bitops.flip_bit):
            with pytest.raises(ValueError):
                fn(0b01, -1)


class TestOneZeroPositions:
    def test_paper_example(self):
        # Section 3.1: v = 010100 -> One = {2, 4}, Zero = {0, 1, 3, 5}.
        assert bitops.one_positions(0b010100, 6) == (2, 4)
        assert bitops.zero_positions(0b010100, 6) == (0, 1, 3, 5)

    def test_partition(self):
        value, width = 0b101101, 6
        ones = set(bitops.one_positions(value, width))
        zeros = set(bitops.zero_positions(value, width))
        assert ones | zeros == set(range(width))
        assert ones & zeros == set()

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValueError):
            bitops.one_positions(0b10000, 4)


class TestContains:
    def test_reflexive(self):
        assert bitops.contains(0b0110, 0b0110)

    def test_strict_containment(self):
        assert bitops.contains(0b0110, 0b0100)
        assert not bitops.contains(0b0100, 0b0110)

    def test_zero_contained_in_everything(self):
        assert bitops.contains(0b1011, 0)

    def test_disjoint(self):
        assert not bitops.contains(0b0110, 0b1000)

    def test_matches_one_positions_subset(self):
        for container in range(16):
            for contained in range(16):
                expected = set(bitops.one_positions(contained, 4)) <= set(
                    bitops.one_positions(container, 4)
                )
                assert bitops.contains(container, contained) == expected


class TestHammingDistance:
    def test_identical(self):
        assert bitops.hamming_distance(0b1010, 0b1010) == 0

    def test_symmetric(self):
        assert bitops.hamming_distance(0b1010, 0b0110) == bitops.hamming_distance(
            0b0110, 0b1010
        )

    def test_known_value(self):
        assert bitops.hamming_distance(0b1010, 0b0110) == 2

    def test_triangle_inequality_sample(self):
        a, b, c = 0b1100, 0b0110, 0b0011
        assert bitops.hamming_distance(a, c) <= bitops.hamming_distance(
            a, b
        ) + bitops.hamming_distance(b, c)


class TestMaskAndExtremes:
    def test_mask_of(self):
        assert bitops.mask_of(0) == 0
        assert bitops.mask_of(4) == 0b1111

    def test_lowest_set_bit(self):
        assert bitops.lowest_set_bit(0b1010) == 1
        assert bitops.lowest_set_bit(0) == -1
        assert bitops.lowest_set_bit(0b1000) == 3

    def test_highest_set_bit(self):
        assert bitops.highest_set_bit(0b1010) == 3
        assert bitops.highest_set_bit(0) == -1
        assert bitops.highest_set_bit(1) == 0

    def test_bit_string(self):
        assert bitops.bit_string(0b0100, 4) == "0100"
        assert bitops.bit_string(0, 3) == "000"

    def test_bit_string_rejects_overflow(self):
        with pytest.raises(ValueError):
            bitops.bit_string(16, 4)
