"""Unit and protocol tests for the Kademlia DHT."""

import pytest

from repro.dht.kademlia import KademliaNetwork


class TestConstruction:
    def test_build(self):
        overlay = KademliaNetwork.build(bits=16, num_nodes=30, seed=1)
        assert len(overlay.nodes) == 30

    def test_buckets_respect_size_limit(self):
        overlay = KademliaNetwork.build(bits=16, num_nodes=50, seed=2, bucket_size=4)
        for node in overlay.nodes.values():
            for bucket in node.buckets:
                assert len(bucket) <= 4

    def test_bucket_members_have_correct_prefix(self):
        overlay = KademliaNetwork.build(bits=12, num_nodes=20, seed=3)
        for address, node in overlay.nodes.items():
            for index, bucket in enumerate(node.buckets):
                for contact in bucket:
                    assert overlay.space.bucket_index(address, contact) == index


class TestRoutingTable:
    def test_observe_moves_to_front(self):
        overlay = KademliaNetwork.build(bits=12, num_nodes=10, seed=4, bucket_size=3)
        address, node = next(iter(overlay.nodes.items()))
        contacts = [a for a in overlay.addresses() if a != address][:3]
        bucket_indices = {overlay.space.bucket_index(address, c) for c in contacts}
        if len(bucket_indices) == 1:
            for contact in contacts:
                node.observe(contact)
            node.observe(contacts[0])
            bucket = node.buckets[bucket_indices.pop()]
            assert bucket[0] == contacts[0]

    def test_observe_self_ignored(self):
        overlay = KademliaNetwork.build(bits=12, num_nodes=5, seed=5)
        address, node = next(iter(overlay.nodes.items()))
        before = [list(b) for b in node.buckets]
        node.observe(address)
        assert [list(b) for b in node.buckets] == before

    def test_closest_contacts_sorted_by_xor(self):
        overlay = KademliaNetwork.build(bits=12, num_nodes=20, seed=6)
        address, node = next(iter(overlay.nodes.items()))
        key = 123
        closest = node.closest_contacts(key, 5)
        distances = [overlay.space.xor_distance(c, key) for c in closest]
        assert distances == sorted(distances)


class TestLookup:
    def test_matches_local_owner(self):
        overlay = KademliaNetwork.build(bits=16, num_nodes=40, seed=7)
        origin = overlay.any_address()
        for key in range(0, 65536, 2311):
            assert overlay.lookup(key, origin=origin).owner == overlay.local_owner(key)

    def test_lookup_from_every_origin(self):
        overlay = KademliaNetwork.build(bits=12, num_nodes=12, seed=8)
        key = 999
        expected = overlay.local_owner(key)
        for origin in overlay.addresses():
            assert overlay.lookup(key, origin=origin).owner == expected

    def test_hops_bounded(self):
        overlay = KademliaNetwork.build(bits=16, num_nodes=64, seed=9)
        origin = overlay.any_address()
        for key in range(0, 65536, 4999):
            assert overlay.lookup(key, origin=origin).hops <= 16

    def test_owner_is_live_under_failures(self):
        overlay = KademliaNetwork.build(bits=16, num_nodes=30, seed=10)
        addresses = overlay.addresses()
        for dead in addresses[5:10]:
            overlay.network.fail(dead)
        origin = addresses[0]
        for key in range(0, 65536, 3000):
            owner = overlay.lookup(key, origin=origin).owner
            assert overlay.network.is_alive(owner)


class TestMembership:
    def test_join_becomes_routable(self):
        overlay = KademliaNetwork.build(bits=12, num_nodes=10, seed=11)
        bootstrap = overlay.any_address()
        newcomer = next(a for a in range(4096) if a not in overlay.nodes)
        overlay.join(newcomer, bootstrap)
        # The newcomer can now resolve keys.
        key = 777
        assert overlay.lookup(key, origin=newcomer).owner == overlay.local_owner(key)

    def test_join_duplicate_rejected(self):
        overlay = KademliaNetwork.build(bits=12, num_nodes=5, seed=12)
        with pytest.raises(ValueError):
            overlay.join(overlay.any_address())

    def test_leave(self):
        overlay = KademliaNetwork.build(bits=12, num_nodes=8, seed=13)
        victim = overlay.addresses()[2]
        overlay.leave(victim)
        assert victim not in overlay.nodes
        with pytest.raises(ValueError):
            overlay.leave(victim)


class TestDolrOperations:
    def test_insert_read_delete_cycle(self):
        overlay = KademliaNetwork.build(bits=16, num_nodes=16, seed=14)
        holder = overlay.any_address()
        assert overlay.insert("obj-1", holder) is True
        assert overlay.read("obj-1") == [holder]
        assert overlay.insert("obj-1", holder + 0) is False  # duplicate ref
        assert overlay.delete("obj-1", holder) is True
        assert overlay.read("obj-1") == []

    def test_replicas_tracked(self):
        overlay = KademliaNetwork.build(bits=16, num_nodes=16, seed=15)
        a, b = overlay.addresses()[:2]
        overlay.insert("obj-2", a)
        first_gone = overlay.insert("obj-2", b)
        assert first_gone is False
        assert sorted(overlay.read("obj-2")) == sorted([a, b])
        assert overlay.delete("obj-2", a) is False  # b's copy remains
        assert overlay.delete("obj-2", b) is True
