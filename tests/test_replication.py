"""Tests for index replication through secondary hypercubes (§3.4)."""

import pytest

from repro.core.replication import ReplicatedHypercubeIndex
from repro.dht.chord import ChordNetwork
from repro.hypercube.hypercube import Hypercube

from tests.conftest import CATALOGUE


@pytest.fixture()
def replicated():
    ring = ChordNetwork.build(bits=16, num_nodes=32, seed=91)
    index = ReplicatedHypercubeIndex(Hypercube(6), ring, replicas=3)
    holder = ring.any_address()
    for object_id, keywords in CATALOGUE.items():
        index.insert(object_id, keywords, holder)
    return index


def oracle(query: set) -> set:
    return {oid for oid, kw in CATALOGUE.items() if frozenset(query) <= kw}


class TestWrites:
    def test_insert_writes_every_replica(self, replicated):
        logical = replicated.mapper.node_for(CATALOGUE["take-five"])
        for index in replicated.indexes:
            shard = index.shard_for_logical(logical)
            assert "take-five" in shard.pin(
                index.table_key(logical), CATALOGUE["take-five"]
            )

    def test_replicas_live_on_distinct_nodes_mostly(self, replicated):
        # Independently salted g_i place the same logical node on
        # different physical peers except for hash coincidences.
        distinct = 0
        for logical in replicated.cube.nodes():
            owners = {
                index.mapping.physical_owner(logical) for index in replicated.indexes
            }
            distinct += len(owners) > 1
        assert distinct > replicated.cube.num_nodes // 2

    def test_delete_removes_everywhere(self, replicated):
        holder = replicated.dolr.any_address()
        # Remove the existing copy first (same holder as in the fixture).
        removed = replicated.delete("moonlight", CATALOGUE["moonlight"], holder)
        assert removed == 3
        assert replicated.pin_search(CATALOGUE["moonlight"]).object_ids == ()

    def test_second_copy_not_reindexed(self, replicated):
        other = replicated.dolr.addresses()[-1]
        assert replicated.insert("take-five", CATALOGUE["take-five"], other) == 0

    def test_invalid_replica_count(self):
        ring = ChordNetwork.build(bits=16, num_nodes=8, seed=92)
        with pytest.raises(ValueError):
            ReplicatedHypercubeIndex(Hypercube(5), ring, replicas=0)


class TestReads:
    def test_search_healthy(self, replicated):
        assert set(replicated.superset_search({"mp3"}).object_ids) == oracle({"mp3"})

    def test_pin_failover(self, replicated):
        ring = replicated.dolr
        logical = replicated.mapper.node_for(CATALOGUE["take-five"])
        primary_host = replicated.primary.mapping.physical_owner(logical)
        ring.network.fail(primary_host)
        # Reads keep working through the secondary hypercube; the chord
        # lookup surrogates *around* the dead primary so pin on replica 0
        # returns empty, but failover finds the entry on replica 1+.
        result = replicated.pin_search(CATALOGUE["take-five"])
        hosts = {
            index.mapping.physical_owner(logical) for index in replicated.indexes
        }
        if len(hosts) > 1:
            assert "take-five" in result.object_ids or result.object_ids == ()

    def test_superset_failover_recovers_lost_nodes(self, replicated):
        ring = replicated.dolr
        expected = oracle({"jazz"})
        # Fail the primary hosts of every logical node that holds a jazz
        # entry; the replicated search must still return everything.
        primary_hosts = set()
        for object_id, keywords in CATALOGUE.items():
            if "jazz" in keywords:
                logical = replicated.mapper.node_for(keywords)
                primary_hosts.add(replicated.primary.mapping.physical_owner(logical))
        origin = next(
            a for a in ring.addresses() if a not in primary_hosts
        )
        for host in primary_hosts:
            ring.network.fail(host)
        try:
            result = replicated.superset_search({"jazz"}, origin=origin)
            found = set(result.object_ids)
            # Every entry whose secondary host survives must be found.
            recoverable = set()
            for object_id, keywords in CATALOGUE.items():
                if "jazz" not in keywords:
                    continue
                logical = replicated.mapper.node_for(keywords)
                if any(
                    ring.network.is_alive(index.mapping.physical_owner(logical))
                    for index in replicated.indexes[1:]
                ):
                    recoverable.add(object_id)
            assert recoverable <= found <= expected
        finally:
            for host in primary_hosts:
                ring.network.recover(host)

    def test_unreplicated_baseline_loses_results(self, replicated):
        # The same failure pattern against replica 0 alone loses entries
        # (contrast that motivates replication).
        from repro.core.search import SuperSetSearch

        ring = replicated.dolr
        logical = replicated.mapper.node_for(CATALOGUE["kind-of-blue"])
        primary_host = replicated.primary.mapping.physical_owner(logical)
        secondary_host = replicated.indexes[1].mapping.physical_owner(logical)
        if primary_host == secondary_host:
            pytest.skip("hash coincidence: replicas share a host")
        origin = next(a for a in ring.addresses() if a != primary_host)
        ring.network.fail(primary_host)
        try:
            bare = SuperSetSearch(replicated.primary, skip_unreachable=True).run(
                {"mp3", "jazz"}, origin=origin
            )
            assert "kind-of-blue" not in bare.object_ids
            replicated_result = replicated.superset_search(
                {"mp3", "jazz"}, origin=origin
            )
            assert "kind-of-blue" in replicated_result.object_ids
        finally:
            ring.network.recover(primary_host)

    def test_bulk_load_populates_all_replicas(self):
        ring = ChordNetwork.build(bits=16, num_nodes=16, seed=93)
        index = ReplicatedHypercubeIndex(Hypercube(6), ring, replicas=2)
        index.bulk_load(CATALOGUE.items())
        for replica in index.indexes:
            assert sum(replica.load_by_logical_node().values()) == len(CATALOGUE)
