"""Tests for the wire codec (repro.net.wire)."""

import json
import math
import struct

import pytest

from repro.net.codec import CODEC_BINARY, CODEC_JSON, PostingList
from repro.net.errors import ProtocolError
from repro.net.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    PROTOCOL_VERSION_BINARY,
    Frame,
    FrameDecoder,
    FrameType,
    decode_frame,
    decode_value,
    encode_frame,
    encode_value,
    parse_frame_info,
)

# One realistic request per message kind the protocol stack sends —
# payloads mirror what the handlers in repro.dht.* / repro.core.index
# actually receive, including the frozenset/tuple shapes that JSON
# alone cannot carry.
PROTOCOL_REQUESTS = {
    # Chord (repro.dht.chord)
    "chord.route_step": {"key": 123456789},
    "chord.get_predecessor": {},
    "chord.get_successor_list": {},
    "chord.notify": {"candidate": 42},
    # Kademlia (repro.dht.kademlia)
    "kad.find_node": {"key": 987654321},
    "kad.ping": {},
    # Pastry (repro.dht.pastry)
    "pastry.route_step": {"key": 555},
    # HyperCuP (repro.dht.hypercup)
    "cube.next_hops": {"target": 7, "dimension": 3},
    # DOLR object operations (repro.dht.dolr)
    "dolr.insert_ref": {"object_id": "paper.pdf", "holder": 99},
    "dolr.delete_ref": {"object_id": "paper.pdf", "holder": 99},
    "dolr.read_ref": {"object_id": "paper.pdf"},
    # Hypercube index (repro.core.index / repro.core.search)
    "hindex.put": {
        "logical": 5,
        "object_id": "paper.pdf",
        "keywords": frozenset({"dht", "search", "p2p"}),
    },
    "hindex.remove": {
        "logical": 5,
        "object_id": "paper.pdf",
        "keywords": frozenset({"dht", "search"}),
    },
    "hindex.pin": {"logical": 5, "keywords": frozenset({"dht"})},
    "hindex.scan": {"logical": 5, "keywords": frozenset({"dht"}), "limit": 10},
    "hindex.results": {"count": 3},
    "hindex.transfer": {
        "logical": 5,
        "entries": [(frozenset({"dht", "p2p"}), ("paper.pdf", "slides.ppt"))],
    },
    "hindex.cache_get": {"logical": 5, "keywords": frozenset({"dht"})},
    "hindex.cache_put": {
        "logical": 5,
        "keywords": frozenset({"dht"}),
        "objects": (("paper.pdf", frozenset({"dht", "search"})),),
    },
}

# Representative replies, including the trickiest one on the protocol:
# hindex.scan returns (frozenset, tuple) match pairs.
PROTOCOL_REPLIES = {
    "chord.route_step": {"next": 17, "candidates": [17, 23, 42], "owner": None},
    "hindex.scan": {
        "matches": [
            (frozenset({"dht", "search"}), ("paper.pdf",)),
            (frozenset({"dht", "p2p", "search"}), ("slides.ppt", "notes.txt")),
        ],
        "truncated": False,
    },
    "dolr.read_ref": {"holders": [3, 99]},
    "kad.find_node": {"closest": [(1, 2), (3, 4)]},
}


def roundtrip(frame: Frame) -> Frame:
    decoded, consumed = decode_frame(encode_frame(frame))
    assert consumed == len(encode_frame(frame))
    return decoded


class TestValueEncoding:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            0,
            -17,
            3.5,
            "keyword",
            [1, 2, 3],
            (1, 2, 3),
            {"a", "b"},
            frozenset({"x", "y"}),
            {"plain": "dict"},
            {"nested": [(frozenset({"k"}), ("oid",))]},
            {1: "non-string key"},
            {"!": "tag-collision value"},
            (),
            frozenset(),
            {},
        ],
    )
    def test_roundtrip_exact(self, value):
        recovered = decode_value(json.loads(json.dumps(encode_value(value))))
        assert recovered == value
        assert type(recovered) is type(value)

    def test_set_vs_frozenset_distinguished(self):
        assert type(decode_value(encode_value({"a"}))) is set
        assert type(decode_value(encode_value(frozenset({"a"})))) is frozenset

    def test_deterministic_bytes_for_sets(self):
        first = json.dumps(encode_value(frozenset({"c", "a", "b"})))
        second = json.dumps(encode_value(frozenset({"b", "c", "a"})))
        assert first == second

    def test_unencodable_type_rejected(self):
        with pytest.raises(ProtocolError):
            encode_value(object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(ProtocolError):
            decode_value({"!": "mystery", "v": []})


class TestFrameRoundtrip:
    @pytest.mark.parametrize("kind", sorted(PROTOCOL_REQUESTS))
    def test_every_protocol_request_kind(self, kind):
        frame = Frame(FrameType.REQUEST, kind, 12, 34, 7, PROTOCOL_REQUESTS[kind])
        assert roundtrip(frame) == frame

    @pytest.mark.parametrize("kind", sorted(PROTOCOL_REPLIES))
    def test_reply_payloads(self, kind):
        frame = Frame(FrameType.REPLY, kind, 34, 12, 7, PROTOCOL_REPLIES[kind])
        assert roundtrip(frame) == frame

    def test_datagram_and_error_frames(self):
        datagram = Frame(FrameType.DATAGRAM, "hindex.results", 1, 2, 3, {"count": 5})
        assert roundtrip(datagram) == datagram
        error = Frame(
            FrameType.ERROR, "hindex.scan", 2, 1, 3,
            {"error": "LookupError", "message": "unknown kind"},
        )
        assert roundtrip(error) == error

    def test_scalar_reply_payloads(self):
        # Handlers may return bare values, not just dicts.
        for payload in (None, True, 7, "ok", [1, 2], (1, 2)):
            frame = Frame(FrameType.REPLY, "chord.get_predecessor", 1, 2, 3, payload)
            assert roundtrip(frame) == frame

    def test_version_byte_on_the_wire(self):
        data = encode_frame(Frame(FrameType.REQUEST, "kad.ping", 1, 2, 3, {}))
        assert data[4] == PROTOCOL_VERSION


class TestMalformedFrames:
    def good_bytes(self):
        return encode_frame(Frame(FrameType.REQUEST, "kad.ping", 1, 2, 3, {}))

    def test_truncated_rejected(self):
        data = self.good_bytes()
        for cut in (0, 1, 4, 5, len(data) - 1):
            with pytest.raises(ProtocolError):
                decode_frame(data[:cut])

    def test_zero_length_rejected(self):
        with pytest.raises(ProtocolError, match="zero-length"):
            decode_frame(struct.pack("!I", 0) + b"rest")

    def test_oversized_rejected_from_header_alone(self):
        # Only 4 bytes supplied: the cap must trip before any body reads.
        header = struct.pack("!I", DEFAULT_MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(header)

    def test_encode_respects_cap(self):
        frame = Frame(FrameType.REQUEST, "hindex.put", 1, 2, 3, {"blob": "x" * 100})
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame(frame, max_frame_bytes=32)

    def test_wrong_version_rejected(self):
        data = bytearray(self.good_bytes())
        data[4] = 99  # neither v1 (JSON) nor v2 (codec-id framed)
        with pytest.raises(ProtocolError, match="version"):
            decode_frame(bytes(data))

    def test_garbage_json_rejected(self):
        body = bytes([PROTOCOL_VERSION]) + b"{not json"
        with pytest.raises(ProtocolError, match="malformed"):
            decode_frame(struct.pack("!I", len(body)) + body)

    @pytest.mark.parametrize(
        "envelope",
        [
            [],  # not an object
            {"kind": "x", "src": 1, "dst": 2, "id": 3},  # missing type
            {"t": "bogus", "kind": "x", "src": 1, "dst": 2, "id": 3},
            {"t": "req", "kind": 9, "src": 1, "dst": 2, "id": 3},  # kind not str
            {"t": "req", "kind": "x", "src": "a", "dst": 2, "id": 3},
            {"t": "req", "kind": "x", "src": 1, "dst": 2, "id": "z"},
        ],
    )
    def test_bad_envelopes_rejected(self, envelope):
        body = bytes([PROTOCOL_VERSION]) + json.dumps(envelope).encode()
        with pytest.raises(ProtocolError):
            decode_frame(struct.pack("!I", len(body)) + body)


def roundtrip_binary(frame: Frame) -> Frame:
    data = encode_frame(frame, codec=CODEC_BINARY)
    decoded, consumed = decode_frame(data)
    assert consumed == len(data)
    return decoded


class TestBinaryFrames:
    @pytest.mark.parametrize("kind", sorted(PROTOCOL_REQUESTS))
    def test_every_protocol_request_kind(self, kind):
        frame = Frame(FrameType.REQUEST, kind, 12, 34, 7, PROTOCOL_REQUESTS[kind])
        assert roundtrip_binary(frame) == frame

    @pytest.mark.parametrize("kind", sorted(PROTOCOL_REPLIES))
    def test_reply_payloads(self, kind):
        frame = Frame(FrameType.REPLY, kind, 34, 12, 7, PROTOCOL_REPLIES[kind])
        assert roundtrip_binary(frame) == frame

    def test_version_and_codec_bytes_on_the_wire(self):
        data = encode_frame(Frame(FrameType.REQUEST, "kad.ping", 1, 2, 3, {}),
                            codec=CODEC_BINARY)
        assert data[4] == PROTOCOL_VERSION_BINARY
        assert data[5] == CODEC_BINARY

    def test_priority_and_negative_addresses(self):
        frame = Frame(FrameType.REQUEST, "hindex.scan", -1, 2**40, 3, {}, priority=9)
        assert roundtrip_binary(frame) == frame

    def test_smaller_than_json_on_posting_heavy_reply(self):
        matches = PostingList(
            (frozenset({f"kw{i}", "dht"}), (f"obj-{i}.pdf",)) for i in range(20)
        )
        frame = Frame(FrameType.REPLY, "hindex.scan", 1, 2, 3,
                      {"matches": matches, "truncated": False})
        binary = encode_frame(frame, codec=CODEC_BINARY)
        json_form = encode_frame(frame)
        assert len(binary) < 0.7 * len(json_form)

    def test_unknown_codec_id_rejected(self):
        data = bytearray(encode_frame(Frame(FrameType.REQUEST, "kad.ping", 1, 2, 3, {}),
                                      codec=CODEC_BINARY))
        data[5] = 77
        with pytest.raises(ProtocolError, match="codec"):
            decode_frame(bytes(data))

    def test_unknown_frame_type_byte_rejected(self):
        data = bytearray(encode_frame(Frame(FrameType.REQUEST, "kad.ping", 1, 2, 3, {}),
                                      codec=CODEC_BINARY))
        data[6] = 250
        with pytest.raises(ProtocolError, match="type"):
            decode_frame(bytes(data))

    def test_truncated_binary_body_rejected(self):
        data = encode_frame(
            Frame(FrameType.REQUEST, "hindex.scan", 1, 2, 3, PROTOCOL_REQUESTS["hindex.scan"]),
            codec=CODEC_BINARY,
        )
        # Re-frame a cut body so the length header is consistent.
        cut = data[struct.calcsize("!I"):-4]
        with pytest.raises(ProtocolError):
            decode_frame(struct.pack("!I", len(cut)) + cut)


class TestNonFinitePayloads:
    """Regression: NaN/Infinity used to sail through ``json.dumps`` as
    the nonstandard ``NaN``/``Infinity`` literals that strict peers
    cannot parse.  Both codecs must refuse at encode time."""

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    @pytest.mark.parametrize("codec", [CODEC_JSON, CODEC_BINARY])
    def test_rejected_at_encode_time(self, codec, bad):
        frame = Frame(FrameType.REPLY, "stats.latency", 1, 2, 3, {"p99": bad})
        with pytest.raises(ProtocolError, match="unencodable|non-finite"):
            encode_frame(frame, codec=codec)

    def test_nested_nan_rejected(self):
        frame = Frame(FrameType.REPLY, "stats.latency", 1, 2, 3,
                      {"series": [1.0, (2.0, math.nan)]})
        with pytest.raises(ProtocolError):
            encode_frame(frame)


class TestNegotiationParsing:
    def good_frame(self):
        return Frame(FrameType.REQUEST, "kad.ping", 1, 2, 3, {})

    def test_v1_without_advert(self):
        frame, codec_id, advertised = parse_frame_info(encode_frame(self.good_frame())[4:])
        assert codec_id == CODEC_JSON
        assert advertised == ()
        assert frame == self.good_frame()

    def test_v1_with_advert(self):
        data = encode_frame(self.good_frame(), advertise=(CODEC_JSON, CODEC_BINARY))
        frame, codec_id, advertised = parse_frame_info(data[4:])
        assert codec_id == CODEC_JSON
        assert advertised == (CODEC_JSON, CODEC_BINARY)
        assert frame == self.good_frame()

    def test_v2_implies_binary_capability(self):
        data = encode_frame(self.good_frame(), codec=CODEC_BINARY)
        frame, codec_id, advertised = parse_frame_info(data[4:])
        assert codec_id == CODEC_BINARY
        assert CODEC_BINARY in advertised
        assert frame == self.good_frame()

    def test_advert_ignored_by_plain_decode(self):
        # decode_frame (the v1 entry point) must keep accepting frames
        # that carry the negotiation key — legacy peers see it as an
        # unknown envelope key and move on.
        data = encode_frame(self.good_frame(), advertise=(CODEC_JSON, CODEC_BINARY))
        decoded, consumed = decode_frame(data)
        assert decoded == self.good_frame()
        assert consumed == len(data)

    def test_malformed_advert_is_ignored(self):
        envelope = {"t": "req", "kind": "kad.ping", "src": 1, "dst": 2, "id": 3,
                    "p": {}, "cd": "not-a-list"}
        body = bytes([PROTOCOL_VERSION]) + json.dumps(envelope).encode()
        frame, codec_id, advertised = parse_frame_info(body)
        assert codec_id == CODEC_JSON
        assert advertised == ()


class TestFrameDecoder:
    def test_byte_at_a_time_never_hangs(self):
        frames = [
            Frame(FrameType.REQUEST, kind, 1, 2, i, PROTOCOL_REQUESTS[kind])
            for i, kind in enumerate(sorted(PROTOCOL_REQUESTS))
        ]
        stream = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        seen = []
        for offset in range(len(stream)):
            seen.extend(decoder.feed(stream[offset : offset + 1]))
        assert seen == frames
        decoder.flush()  # clean EOF: no pending bytes

    def test_split_across_arbitrary_chunks(self):
        frame = Frame(FrameType.REQUEST, "hindex.scan", 1, 2, 3, PROTOCOL_REQUESTS["hindex.scan"])
        stream = encode_frame(frame) * 3
        for chunk_size in (1, 2, 3, 5, 7, len(stream)):
            decoder = FrameDecoder()
            seen = []
            for start in range(0, len(stream), chunk_size):
                seen.extend(decoder.feed(stream[start : start + chunk_size]))
            assert seen == [frame, frame, frame]

    def test_truncated_stream_reports_at_flush(self):
        decoder = FrameDecoder()
        data = encode_frame(Frame(FrameType.REQUEST, "kad.ping", 1, 2, 3, {}))
        assert decoder.feed(data[:-2]) == []
        assert decoder.pending_bytes == len(data) - 2
        with pytest.raises(ProtocolError, match="mid-frame"):
            decoder.flush()

    def test_oversized_header_poisons_immediately(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.feed(struct.pack("!I", 65))
        with pytest.raises(ProtocolError, match="poisoned"):
            decoder.feed(b"more")

    def test_garbage_after_good_frame_poisons(self):
        decoder = FrameDecoder()
        good = encode_frame(Frame(FrameType.REQUEST, "kad.ping", 1, 2, 3, {}))
        bad_body = bytes([PROTOCOL_VERSION]) + b"\xff\xfe garbage"
        bad = struct.pack("!I", len(bad_body)) + bad_body
        with pytest.raises(ProtocolError):
            decoder.feed(good + bad)

    def test_fuzz_random_bytes_never_hang(self):
        import random

        rng = random.Random(1234)
        for trial in range(50):
            decoder = FrameDecoder(max_frame_bytes=4096)
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 200)))
            try:
                for start in range(0, len(blob), 7):
                    decoder.feed(blob[start : start + 7])
                decoder.flush()
            except ProtocolError:
                pass  # rejection is the expected outcome; hanging is the bug
