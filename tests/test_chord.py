"""Unit and protocol tests for the Chord DHT."""

import pytest

from repro.dht.chord import ChordNetwork
from repro.sim.network import SimulatedNetwork


class TestConstruction:
    def test_build_creates_distinct_addresses(self):
        ring = ChordNetwork.build(bits=10, num_nodes=30, seed=1)
        assert len(ring.nodes) == 30
        assert len(set(ring.nodes)) == 30

    def test_too_many_nodes_rejected(self):
        with pytest.raises(ValueError):
            ChordNetwork.build(bits=3, num_nodes=9)

    def test_ring_is_consistent(self):
        ring = ChordNetwork.build(bits=10, num_nodes=16, seed=2)
        ordered = ring.addresses()
        for rank, address in enumerate(ordered):
            node = ring.nodes[address]
            assert node.successor == ordered[(rank + 1) % len(ordered)]
            assert node.predecessor == ordered[(rank - 1) % len(ordered)]

    def test_fingers_point_to_successors_of_starts(self):
        ring = ChordNetwork.build(bits=8, num_nodes=12, seed=3)
        for node in ring.nodes.values():
            for index, finger in enumerate(node.fingers):
                assert finger == ring.local_owner(node.finger_start(index))

    def test_single_node_ring(self):
        ring = ChordNetwork.build(bits=8, num_nodes=1, seed=4)
        (address,) = ring.addresses()
        assert ring.local_owner(123 % 256) == address
        result = ring.lookup(7, origin=address)
        assert result.owner == address
        assert result.hops == 0


class TestLocalOwner:
    def test_owner_is_successor(self):
        ring = ChordNetwork.build(bits=8, num_nodes=5, seed=5)
        ordered = ring.addresses()
        # A key just above a node belongs to the next node.
        key = (ordered[0] + 1) % 256
        if key <= ordered[1]:
            assert ring.local_owner(key) == ordered[1]

    def test_wraparound(self):
        ring = ChordNetwork.build(bits=8, num_nodes=5, seed=6)
        ordered = ring.addresses()
        key = (ordered[-1] + 1) % 256
        if key < ordered[0] or key > ordered[-1]:
            assert ring.local_owner(key) == ordered[0]

    def test_own_address_owned_by_self(self):
        ring = ChordNetwork.build(bits=8, num_nodes=10, seed=7)
        for address in ring.addresses():
            assert ring.local_owner(address) == address


class TestLookup:
    def test_matches_local_owner_everywhere(self):
        ring = ChordNetwork.build(bits=10, num_nodes=20, seed=8)
        origins = ring.addresses()[:3]
        for key in range(0, 1024, 37):
            expected = ring.local_owner(key)
            for origin in origins:
                assert ring.lookup(key, origin=origin).owner == expected

    def test_hop_count_logarithmic(self):
        ring = ChordNetwork.build(bits=16, num_nodes=64, seed=9)
        origin = ring.any_address()
        hops = [ring.lookup(key, origin=origin).hops for key in range(0, 65536, 1111)]
        assert max(hops) <= 16  # log2(64) = 6 expected; generous bound
        assert sum(hops) / len(hops) <= 8

    def test_lookup_pays_messages(self):
        ring = ChordNetwork.build(bits=12, num_nodes=32, seed=10)
        origin = ring.any_address()
        with ring.network.trace() as trace:
            result = ring.lookup(2048, origin=origin)
        # Each hop is one rpc = 2 messages (none when resolved locally).
        assert trace.message_count == 2 * result.hops

    def test_path_starts_at_origin(self):
        ring = ChordNetwork.build(bits=12, num_nodes=32, seed=11)
        origin = ring.addresses()[5]
        result = ring.lookup(100, origin=origin)
        assert result.path[0] == origin
        assert result.path[-1] == result.owner


class TestFailureTolerance:
    def test_routes_around_dead_nodes(self):
        # Fail every third node: heavy but dispersed failure, within the
        # successor list's redundancy (8 *consecutive* dead successors
        # would defeat any length-8 successor list, in real Chord too).
        ring = ChordNetwork.build(bits=12, num_nodes=40, seed=12)
        addresses = ring.addresses()
        origin = addresses[0]
        for dead in addresses[10:34:3]:
            ring.network.fail(dead)
        for key in range(0, 4096, 251):
            result = ring.lookup(key, origin=origin)
            assert ring.network.is_alive(result.owner)

    def test_surrogate_owner_is_next_live_successor(self):
        ring = ChordNetwork.build(bits=12, num_nodes=20, seed=13)
        ordered = ring.addresses()
        victim = ordered[4]
        ring.network.fail(victim)
        result = ring.lookup(victim, origin=ordered[0])
        live = [a for a in ordered if ring.network.is_alive(a)]
        expected = next(
            (a for a in live if a >= victim), live[0]
        )
        assert result.owner == expected

    def test_sole_survivor_owns_everything(self):
        # With every other node dead, the sole survivor surrogates the
        # whole key space (its successor list wraps back to itself).
        ring = ChordNetwork.build(bits=8, num_nodes=4, seed=14)
        addresses = ring.addresses()
        for dead in addresses[1:]:
            ring.network.fail(dead)
        origin = addresses[0]
        for key in range(0, 256, 17):
            assert ring.lookup(key, origin=origin).owner == origin


class TestDynamicMembership:
    def test_join_then_stabilize_converges(self):
        ring = ChordNetwork(space=ChordNetwork.build(bits=10, num_nodes=1, seed=15).space)
        # Start fresh: build incrementally.
        ring = ChordNetwork.build(bits=10, num_nodes=1, seed=15)
        bootstrap = ring.any_address()
        for address in (17, 300, 512, 900, 77):
            if address not in ring.nodes:
                ring.join(address, bootstrap)
                ring.stabilize_all(rounds=3)
        ordered = ring.addresses()
        for rank, address in enumerate(ordered):
            node = ring.nodes[address]
            assert node.successor == ordered[(rank + 1) % len(ordered)]

    def test_join_duplicate_rejected(self):
        ring = ChordNetwork.build(bits=10, num_nodes=4, seed=16)
        existing = ring.any_address()
        with pytest.raises(ValueError):
            ring.join(existing, bootstrap=existing)

    def test_leave_heals_after_stabilization(self):
        ring = ChordNetwork.build(bits=10, num_nodes=10, seed=17)
        ordered = ring.addresses()
        victim = ordered[3]
        ring.leave(victim)
        ring.stabilize_all(rounds=3)
        remaining = ring.addresses()
        assert victim not in remaining
        for rank, address in enumerate(remaining):
            node = ring.nodes[address]
            assert node.successor == remaining[(rank + 1) % len(remaining)]

    def test_lookup_correct_after_churn(self):
        ring = ChordNetwork.build(bits=10, num_nodes=8, seed=18)
        bootstrap = ring.any_address()
        for address in (5, 111, 222, 333):
            if address not in ring.nodes:
                ring.join(address, bootstrap)
                ring.stabilize_all(rounds=3)
        ring.leave(ring.addresses()[-1])
        ring.stabilize_all(rounds=3)
        for key in range(0, 1024, 97):
            assert ring.lookup(key, origin=bootstrap).owner == ring.local_owner(key)

    def test_leave_unknown_rejected(self):
        ring = ChordNetwork.build(bits=10, num_nodes=4, seed=19)
        with pytest.raises(ValueError):
            ring.leave(9999)


class TestSharedNetwork:
    def test_two_rings_cannot_share_addresses(self):
        # Two DHTs on one physical network: handlers collide only if the
        # same address registers twice; distinct seeds avoid that here.
        net = SimulatedNetwork()
        ring1 = ChordNetwork.build(bits=16, num_nodes=8, seed=20, network=net)
        ring2 = ChordNetwork.build(bits=16, num_nodes=8, seed=21, network=net)
        assert ring1.network is ring2.network
        assert len(net.addresses()) <= 16
