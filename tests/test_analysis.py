"""Tests for the analytical models: Equations (1)/(2), load metrics,
dimension selection, recall curves."""

import math

import pytest

from repro.analysis.balls import (
    expected_one_count,
    monte_carlo_one_count,
    one_count_distribution,
    one_count_probability,
)
from repro.analysis.balls import expected_one_count_by_pmf
from repro.analysis.dimension import (
    distribution_distance,
    node_weight_distribution,
    object_weight_distribution,
    recommend_dimension,
)
from repro.analysis.load import (
    coefficient_of_variation,
    gini_coefficient,
    max_to_mean_ratio,
    ranked_load_curve,
)


class TestEquationOne:
    def test_single_keyword(self):
        assert one_count_probability(8, 1, 1) == 1.0
        assert one_count_probability(8, 1, 2) == 0.0

    def test_two_keywords_two_bins(self):
        # Two balls, two bins: collision probability 1/2.
        assert one_count_probability(2, 2, 1) == pytest.approx(0.5)
        assert one_count_probability(2, 2, 2) == pytest.approx(0.5)

    def test_m_zero(self):
        assert one_count_probability(5, 0, 0) == 1.0
        assert one_count_probability(5, 0, 1) == 0.0

    def test_j_cannot_exceed_m(self):
        assert one_count_probability(10, 3, 4) == 0.0

    def test_pmf_sums_to_one(self):
        for r, m in ((8, 5), (10, 7), (12, 20), (3, 50)):
            assert sum(one_count_distribution(r, m)) == pytest.approx(1.0, abs=1e-12)

    def test_surjective_case(self):
        # m >= r: all bins can be occupied; P(j=r) is the surjection count.
        r, m = 3, 5
        surjections = sum(
            (-1) ** i * math.comb(r, i) * (r - i) ** m for i in range(r + 1)
        )
        assert one_count_probability(r, m, r) == pytest.approx(surjections / r**m)

    def test_matches_monte_carlo(self):
        analytic = one_count_distribution(10, 7)
        empirical = monte_carlo_one_count(10, 7, trials=30_000, seed=1)
        assert max(abs(a - b) for a, b in zip(analytic, empirical)) < 0.02

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            one_count_probability(0, 1, 0)
        with pytest.raises(ValueError):
            one_count_probability(4, -1, 0)
        with pytest.raises(ValueError):
            one_count_probability(4, 1, 5)


class TestEquationTwo:
    def test_closed_form_matches_pmf_sum(self):
        for r, m in ((8, 3), (10, 7), (12, 12), (6, 1)):
            assert expected_one_count(r, m) == pytest.approx(
                expected_one_count_by_pmf(r, m), abs=1e-9
            )

    def test_monotone_in_m(self):
        values = [expected_one_count(10, m) for m in range(0, 20)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_bounded_by_r(self):
        # Converges to r from below (equals 8.0 within float precision
        # for very large m).
        assert expected_one_count(8, 1000) <= 8.0
        assert expected_one_count(8, 50) < 8.0
        assert expected_one_count(8, 1000) > 7.9

    def test_m_zero(self):
        assert expected_one_count(7, 0) == 0.0


class TestLoadMetrics:
    def test_ranked_curve_uniform(self):
        curve = ranked_load_curve([2, 2, 2, 2])
        assert curve == [(0.25, 0.25), (0.5, 0.5), (0.75, 0.75), (1.0, 1.0)]

    def test_ranked_curve_skewed(self):
        curve = ranked_load_curve([3, 1, 0, 0])
        assert curve[0] == (0.25, 0.75)

    def test_ranked_curve_sampled_points(self):
        curve = ranked_load_curve([4, 3, 2, 1], points=(0.5, 1.0))
        assert curve == [(0.5, 0.7), (1.0, 1.0)]

    def test_ranked_curve_accepts_mapping(self):
        assert ranked_load_curve({0: 1, 1: 1}) == [(0.5, 0.5), (1.0, 1.0)]

    def test_ranked_curve_validation(self):
        with pytest.raises(ValueError):
            ranked_load_curve([])
        with pytest.raises(ValueError):
            ranked_load_curve([1], points=(1.5,))

    def test_gini_uniform_zero(self):
        assert gini_coefficient([5, 5, 5]) == pytest.approx(0.0)

    def test_gini_concentrated(self):
        assert gini_coefficient([10, 0, 0, 0]) == pytest.approx(0.75)

    def test_gini_all_zero(self):
        assert gini_coefficient([0, 0]) == 0.0

    def test_gini_monotone_in_skew(self):
        assert gini_coefficient([1, 1, 1, 9]) > gini_coefficient([2, 2, 3, 5])

    def test_cv(self):
        assert coefficient_of_variation([1, 1, 1, 1]) == 0.0
        assert coefficient_of_variation([0, 2]) == pytest.approx(1.0)

    def test_max_to_mean(self):
        assert max_to_mean_ratio([1, 1, 4]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        for metric in (gini_coefficient, coefficient_of_variation, max_to_mean_ratio):
            with pytest.raises(ValueError):
                metric([])


class TestDimensionSelection:
    def test_node_weight_is_binomial(self):
        pmf = node_weight_distribution(4)
        assert pmf == pytest.approx([1 / 16, 4 / 16, 6 / 16, 4 / 16, 1 / 16])

    def test_object_weight_sums_to_one(self):
        pmf = object_weight_distribution(10, {7: 1.0})
        assert sum(pmf) == pytest.approx(1.0)

    def test_object_weight_mixture(self):
        mixed = object_weight_distribution(8, {1: 0.5, 2: 0.5})
        pure1 = object_weight_distribution(8, {1: 1.0})
        pure2 = object_weight_distribution(8, {2: 1.0})
        for index in range(9):
            assert mixed[index] == pytest.approx(
                0.5 * pure1[index] + 0.5 * pure2[index]
            )

    def test_distribution_distance(self):
        assert distribution_distance([1.0, 0.0], [0.0, 1.0]) == 1.0
        with pytest.raises(ValueError):
            distribution_distance([1.0], [0.5, 0.5])

    def test_recommendation_near_paper_optimum(self):
        # For a keyword-size distribution with mean 7.3, the best r must
        # land near the paper's empirical optimum of 10.
        from repro.workload.distributions import fit_lognormal_to_mean

        sizes = fit_lognormal_to_mean(7.3)
        best, distances = recommend_dimension(
            dict(sizes.items()), min_dimension=6, max_dimension=16
        )
        assert 9 <= best <= 11
        assert distances[best] <= distances[6]
        assert distances[best] <= distances[16]

    def test_recommendation_validation(self):
        with pytest.raises(ValueError):
            recommend_dimension({5: 1.0}, min_dimension=8, max_dimension=4)
        with pytest.raises(ValueError):
            object_weight_distribution(8, {})


class TestRecallCurve:
    def test_curve_from_search_trace(self, loaded_index):
        from repro.analysis.recall import average_recall_curve, recall_curve
        from repro.core.search import SuperSetSearch

        searcher = SuperSetSearch(loaded_index)
        result = searcher.run({"jazz"})
        total_nodes = loaded_index.cube.num_nodes
        curve = recall_curve(result, len(result.objects), total_nodes, (0.5, 1.0))
        assert len(curve) == 2
        assert 0 < curve[0][1] <= curve[1][1] <= 1.0

        averaged = average_recall_curve([curve, curve])
        assert averaged == curve

    def test_curve_requires_uncapped_trace(self, loaded_index):
        from repro.analysis.recall import recall_curve
        from repro.core.search import SuperSetSearch

        searcher = SuperSetSearch(loaded_index)
        capped = searcher.run({"jazz"}, threshold=1)
        with pytest.raises(ValueError):
            recall_curve(capped, 4, loaded_index.cube.num_nodes)

    def test_average_validation(self):
        from repro.analysis.recall import average_recall_curve

        with pytest.raises(ValueError):
            average_recall_curve([])
        with pytest.raises(ValueError):
            average_recall_curve([[(0.5, 0.1)], [(1.0, 0.2)]])
