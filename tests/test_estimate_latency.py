"""Tests for the cardinality estimator, latency analysis, and result export."""

import json

import pytest

from repro.analysis.estimate import estimate_matching_count
from repro.analysis.latency import (
    critical_path_latency,
    mean_speedup,
    sequential_latency,
    speedup,
)
from repro.core.index import HypercubeIndex
from repro.core.search import SuperSetSearch
from repro.dht.chord import ChordNetwork
from repro.experiments.harness import ExperimentResult
from repro.hypercube.hypercube import Hypercube
from repro.sim.latency import ConstantLatency, LogNormalLatency
from repro.workload.corpus import SyntheticCorpus


@pytest.fixture(scope="module")
def loaded():
    ring = ChordNetwork.build(bits=16, num_nodes=24, seed=77)
    index = HypercubeIndex(Hypercube(9), ring)
    corpus = SyntheticCorpus.generate(num_objects=1_500, seed=77)
    index.bulk_load((record.object_id, record.keywords) for record in corpus)
    index.mapping.enable_placement_cache()
    return corpus, index


class TestEstimator:
    def test_exact_when_subcube_small(self, loaded):
        corpus, index = loaded
        record = max(corpus.records, key=lambda r: r.keyword_count)
        query = frozenset(sorted(record.keywords)[:6])
        estimate = estimate_matching_count(index, query, sample_nodes=1024, seed=0)
        assert estimate.exact
        assert estimate.stderr == 0.0
        assert estimate.estimate == len(corpus.matching(query))

    def test_confidence_interval_covers_truth(self, loaded):
        corpus, index = loaded
        keyword, true_count = corpus.keyword_frequencies().most_common(1)[0]
        hits = 0
        for seed in range(8):
            estimate = estimate_matching_count(
                index, {keyword}, sample_nodes=64, seed=seed
            )
            hits += estimate.low <= true_count <= estimate.high
        assert hits >= 6  # ~95% CI; allow sampling luck

    def test_zero_for_no_matches(self, loaded):
        _, index = loaded
        estimate = estimate_matching_count(index, {"zz-none"}, sample_nodes=16, seed=1)
        assert estimate.estimate == 0.0

    def test_cost_bounded_by_sample(self, loaded):
        _, index = loaded
        with index.dolr.network.trace() as trace:
            estimate_matching_count(index, {"anything"}, sample_nodes=10, seed=2)
        assert trace.request_count <= 10

    def test_validation(self, loaded):
        _, index = loaded
        with pytest.raises(ValueError):
            estimate_matching_count(index, {"x"}, sample_nodes=0)


class TestLatencyAnalysis:
    @pytest.fixture(scope="class")
    def trace(self, loaded):
        corpus, index = loaded
        keyword, _ = corpus.keyword_frequencies().most_common(1)[0]
        return SuperSetSearch(index).run({keyword})

    def test_constant_links_speedup_is_visits_over_levels(self, trace):
        model = ConstantLatency(1.0)
        remote = [v for v in trace.visits if v.physical != trace.root_physical]
        levels = {v.depth for v in remote}
        assert sequential_latency(trace, model) == pytest.approx(2.0 * len(remote))
        assert critical_path_latency(trace, model) == pytest.approx(2.0 * len(levels))

    def test_parallel_never_slower(self, trace):
        model = LogNormalLatency(median_ms=50, sigma=0.6, seed=3)
        assert speedup(trace, model) >= 1.0

    def test_mean_speedup(self, trace):
        model = ConstantLatency(1.0)
        assert mean_speedup([trace, trace], model) == pytest.approx(
            speedup(trace, model)
        )
        with pytest.raises(ValueError):
            mean_speedup([], model)


class TestResultExport:
    def make_result(self):
        return ExperimentResult(
            "demo",
            "test",
            {"dims": (1, 2), "name": "x"},
            [{"a": 1, "b": 0.5}, {"a": 2, "c": "text"}],
            notes=["note"],
        )

    def test_csv_round_trip(self):
        import csv
        import io

        text = self.make_result().to_csv()
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["a"] == "1"
        assert rows[1]["c"] == "text"
        assert rows[0]["c"] == ""

    def test_json_structure(self):
        payload = json.loads(self.make_result().to_json())
        assert payload["experiment"] == "demo"
        assert payload["parameters"]["dims"] == [1, 2]
        assert payload["rows"][0]["b"] == 0.5
        assert payload["notes"] == ["note"]
