"""Stale-read regression tests for the cache-coherence protocol.

docs/protocol.md §16: any ``hindex.put``/``hindex.remove`` must
invalidate (or patch) every cached query result it could have changed —
on the written node and at the superset query roots reached by the
``hindex.cache_invalidate`` fan-up — so a cached answer is never
observably different from a fresh walk.  These tests pin exactly that:
insert-after-cached-query surfaces the new object, delete-after-cached-
query returns no dangling reference, across every traversal order, on
the simulator and over loopback TCP, with and without the cooperative
SBT-path tier.
"""

import pytest

from repro.core.config import SearchOptions, ServiceConfig
from repro.core.search import TraversalOrder
from repro.core.service import KeywordSearchService
from repro.net.cluster import LocalCluster

ORDERS = [TraversalOrder.TOP_DOWN, TraversalOrder.BOTTOM_UP, TraversalOrder.PARALLEL]

CORPUS = [
    ("paper.pdf", {"dht", "search", "p2p"}),
    ("slides.ppt", {"dht", "search"}),
    ("notes.txt", {"p2p", "overlay"}),
    ("code.tar", {"dht", "overlay", "chord"}),
    ("data.csv", {"search"}),
    ("thesis.pdf", {"dht", "p2p", "overlay", "search"}),
]


def build_config(**overrides) -> ServiceConfig:
    base = dict(dimension=6, num_dht_nodes=16, seed=11, cache_capacity=8)
    base.update(overrides)
    return ServiceConfig(**base)


def load(service: KeywordSearchService) -> None:
    for object_id, keywords in CORPUS:
        service.publish(object_id, keywords)


def query(service, keywords, order):
    return service.superset_search(keywords, order=order, use_cache=True)


class TestSimulatorCoherence:
    @pytest.fixture(params=[False, True], ids=["root-only", "cooperative"])
    def service(self, request):
        service = KeywordSearchService.create(
            build_config(cooperative_cache=request.param)
        )
        load(service)
        return service

    @pytest.mark.parametrize("order", ORDERS, ids=lambda o: o.value)
    def test_insert_after_cached_query_surfaces_new_object(self, service, order):
        before = query(service, {"dht"}, order)
        assert "fresh.mp4" not in before.object_ids
        service.publish("fresh.mp4", {"dht", "video"})
        after = query(service, {"dht"}, order)
        assert "fresh.mp4" in after.object_ids

    @pytest.mark.parametrize("order", ORDERS, ids=lambda o: o.value)
    def test_delete_after_cached_query_drops_reference(self, service, order):
        before = query(service, {"dht"}, order)
        assert "paper.pdf" in before.object_ids
        service.unpublish("paper.pdf", holder=CORPUS_HOLDER(service))
        after = query(service, {"dht"}, order)
        assert "paper.pdf" not in after.object_ids
        # And the cached answer matches a fresh uncached walk exactly.
        fresh = service.superset_search({"dht"}, order=order, use_cache=False)
        assert set(after.object_ids) == set(fresh.object_ids)

    @pytest.mark.parametrize("order", ORDERS, ids=lambda o: o.value)
    def test_write_between_repeats_never_stale(self, service, order):
        # Interleave queries and writes; every read must equal a fresh
        # uncached walk at that instant.
        for round_no in range(4):
            object_id = f"gen-{round_no}"
            service.publish(object_id, {"dht", f"tag{round_no}"})
            cached = query(service, {"dht"}, order)
            fresh = service.superset_search({"dht"}, order=order, use_cache=False)
            assert set(cached.object_ids) == set(fresh.object_ids)
            assert object_id in cached.object_ids


def CORPUS_HOLDER(service) -> int:
    """Every CORPUS publish used the service's default holder."""
    record = next(iter(service._published.values()))
    return record.holder


class TestReplicatedCoherence:
    @pytest.mark.parametrize("order", ORDERS, ids=lambda o: o.value)
    def test_replicated_writes_invalidate_every_replica(self, order):
        service = KeywordSearchService.create(build_config(index_replicas=2))
        load(service)
        before = query(service, {"dht"}, order)
        assert "fresh.mp4" not in before.object_ids
        service.publish("fresh.mp4", {"dht", "video"})
        after = query(service, {"dht"}, order)
        assert "fresh.mp4" in after.object_ids
        service.unpublish("fresh.mp4", holder=CORPUS_HOLDER(service))
        gone = query(service, {"dht"}, order)
        assert "fresh.mp4" not in gone.object_ids


class TestTcpCoherence:
    @pytest.fixture(scope="class")
    def cluster(self):
        with LocalCluster(build_config(cooperative_cache=True)) as cluster:
            load(cluster.service)
            yield cluster

    @pytest.mark.parametrize("order", ORDERS, ids=lambda o: o.value)
    def test_insert_and_delete_visible_over_tcp(self, cluster, order):
        service = cluster.service
        object_id = f"wire-{order.value}"
        before = query(service, {"dht"}, order)
        assert object_id not in before.object_ids
        service.publish(object_id, {"dht", "wire"})
        after = query(service, {"dht"}, order)
        assert object_id in after.object_ids
        service.unpublish(object_id, holder=CORPUS_HOLDER(service))
        gone = query(service, {"dht"}, order)
        assert object_id not in gone.object_ids


class TestCooperativeTier:
    @pytest.fixture()
    def service(self):
        service = KeywordSearchService.create(
            build_config(cache_capacity=16, cooperative_cache=True)
        )
        load(service)
        return service

    @pytest.mark.parametrize(
        "order",
        [TraversalOrder.TOP_DOWN, TraversalOrder.PARALLEL],
        ids=lambda o: o.value,
    )
    def test_path_cache_prunes_revisit_after_root_eviction(self, service, order):
        # Fill the path caches with one full walk, then evict the root
        # entry (reset only that node's cache) and re-walk: interior
        # path-cache hits must prune subtrees, contacting fewer nodes
        # than the cold walk while returning the same results.
        cold = query(service, {"dht"}, order)
        assert not cold.cache_hit
        root_shard = service.index.shard_at(cold.root_physical)
        root_shard.reset_cache()
        warm = query(service, {"dht"}, order)
        assert not warm.cache_hit  # root entry is gone...
        assert set(warm.object_ids) == set(cold.object_ids)
        assert len(warm.visits) < len(cold.visits)  # ...but the path pruned

    def test_bottom_up_never_consults_path_caches(self, service):
        cold = query(service, {"dht"}, TraversalOrder.BOTTOM_UP)
        again = query(service, {"dht"}, TraversalOrder.BOTTOM_UP)
        # Second query hits the root cache outright; after evicting it,
        # a bottom-up walk revisits every node (no subtree pruning).
        assert again.cache_hit
        service.index.shard_at(cold.root_physical).reset_cache()
        rewalk = query(service, {"dht"}, TraversalOrder.BOTTOM_UP)
        assert len(rewalk.visits) == len(cold.visits)
        assert set(rewalk.object_ids) == set(cold.object_ids)

    def test_cooperative_results_match_root_only(self):
        plain = KeywordSearchService.create(build_config(cache_capacity=16))
        coop = KeywordSearchService.create(
            build_config(cache_capacity=16, cooperative_cache=True)
        )
        load(plain)
        load(coop)
        for keywords in ({"dht"}, {"search"}, {"p2p", "overlay"}, {"nosuch"}):
            for order in (TraversalOrder.TOP_DOWN, TraversalOrder.PARALLEL):
                expected = query(plain, keywords, order)
                for _ in range(2):  # cold then path-assisted
                    got = query(coop, keywords, order)
                    assert set(got.object_ids) == set(expected.object_ids)
                    assert got.complete == expected.complete


class TestHitVsWalkParity:
    """Satellite: a trimmed cache hit must answer exactly like the
    equivalent fresh walk — same objects, same ``complete`` flag — for
    every threshold (the bug was ``complete=True`` on a trimmed hit)."""

    @pytest.fixture()
    def service(self):
        service = KeywordSearchService.create(build_config(cache_capacity=16))
        load(service)
        return service

    @pytest.mark.parametrize("threshold", [1, 2, 3, 4, 5, None])
    def test_hit_matches_fresh_walk(self, service, threshold):
        options = SearchOptions(threshold=threshold, use_cache=True)
        primed = service.search({"dht"}, SearchOptions(use_cache=True))  # complete set
        hit = service.search({"dht"}, options)
        assert hit.cache_hit
        fresh = service.search(
            {"dht"}, SearchOptions(threshold=threshold, use_cache=False)
        )
        assert set(hit.object_ids) == set(fresh.object_ids)
        if threshold == len(primed.objects):
            # At threshold == |O_K| a fresh walk may pessimistically
            # report incomplete (it stopped with subtrees still queued);
            # the cache knows the trimmed-nothing set was complete.  The
            # hit may only be *more* accurate, never less.
            assert hit.complete or not fresh.complete
        else:
            assert hit.complete == fresh.complete

    def test_trimmed_hit_reports_incomplete(self, service):
        full = service.search({"dht"}, SearchOptions(use_cache=True))
        assert full.complete and len(full.objects) > 1
        trimmed = service.search({"dht"}, SearchOptions(threshold=1, use_cache=True))
        assert trimmed.cache_hit
        assert len(trimmed.objects) == 1
        assert not trimmed.complete  # matches were left behind

    def test_exact_threshold_hit_keeps_complete(self, service):
        full = service.search({"dht"}, SearchOptions(use_cache=True))
        exact = service.search(
            {"dht"}, SearchOptions(threshold=len(full.objects), use_cache=True)
        )
        assert exact.cache_hit
        assert exact.complete  # nothing was dropped by the trim
