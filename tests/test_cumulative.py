"""Tests for cumulative superset search (browse sessions)."""

import pytest

from repro.core.cumulative import CumulativeSearchSession
from repro.core.search import SuperSetSearch

from tests.conftest import CATALOGUE


def oracle(query: set) -> set:
    return {oid for oid, kw in CATALOGUE.items() if frozenset(query) <= kw}


class TestBatching:
    def test_batches_are_disjoint(self, loaded_index):
        session = CumulativeSearchSession(loaded_index, {"mp3"})
        first = session.next_batch(2)
        second = session.next_batch(2)
        ids_first = {f.object_id for f in first.objects}
        ids_second = {f.object_id for f in second.objects}
        assert not ids_first & ids_second

    def test_union_of_batches_is_complete(self, loaded_index):
        session = CumulativeSearchSession(loaded_index, {"mp3"})
        collected = set()
        while not session.exhausted:
            batch = session.next_batch(1)
            collected.update(f.object_id for f in batch.objects)
        assert collected == oracle({"mp3"})

    def test_drain(self, loaded_index):
        session = CumulativeSearchSession(loaded_index, {"jazz"})
        everything = session.drain(batch_size=2)
        assert {f.object_id for f in everything} == oracle({"jazz"})
        assert session.exhausted

    def test_exhausted_session_returns_empty(self, loaded_index):
        session = CumulativeSearchSession(loaded_index, {"mp3"})
        session.drain()
        batch = session.next_batch(3)
        assert batch.objects == ()
        assert batch.exhausted

    def test_total_served(self, loaded_index):
        session = CumulativeSearchSession(loaded_index, {"mp3"})
        session.next_batch(2)
        assert session.total_served == 2

    def test_invalid_count(self, loaded_index):
        session = CumulativeSearchSession(loaded_index, {"mp3"})
        with pytest.raises(ValueError):
            session.next_batch(0)


class TestOrderingConsistency:
    def test_same_order_as_one_shot_search(self, loaded_index):
        one_shot = SuperSetSearch(loaded_index).run({"mp3"})
        session = CumulativeSearchSession(loaded_index, {"mp3"})
        paged = []
        while not session.exhausted:
            paged.extend(f.object_id for f in session.next_batch(2).objects)
        assert paged == list(one_shot.object_ids)

    def test_mid_node_resume(self, loaded_index):
        # Page size 1 forces resuming inside a node that holds several
        # matching objects.
        session = CumulativeSearchSession(loaded_index, {"jazz"})
        singles = []
        while not session.exhausted:
            batch = session.next_batch(1)
            singles.extend(f.object_id for f in batch.objects)
        assert set(singles) == oracle({"jazz"})
        assert len(singles) == len(set(singles))

    def test_no_matches(self, loaded_index):
        session = CumulativeSearchSession(loaded_index, {"nothing"})
        batch = session.next_batch(5)
        assert batch.objects == ()
        assert session.exhausted
