"""Tests for the codec core (repro.net.codec).

The load-bearing property: the JSON and binary codecs carry the *same*
value domain, and for any value in that domain both round-trip it to an
equal value — so a payload produced by any layer (wire, WAL, scans)
survives either medium, which is what makes per-connection negotiation
and per-record WAL auto-detection safe.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.codec import (
    BINARY_CODEC,
    CODEC_BINARY,
    CODEC_JSON,
    JSON_CODEC,
    PostingList,
    codec_by_id,
    codec_by_name,
    new_buffer,
    read_str,
    read_uvarint,
    read_varint,
    write_str,
    write_uvarint,
    write_varint,
)
from repro.net.errors import ProtocolError

CODECS = [JSON_CODEC, BINARY_CODEC]


def encode(codec, value) -> bytes:
    buffer = bytearray()
    codec.encode_into(buffer, value)
    return bytes(buffer)


def roundtrip(codec, value):
    return codec.decode(encode(codec, value))


# -- hypothesis strategies --------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)

hashables = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.tuples(inner, inner),
        st.frozensets(inner, max_size=4),
    ),
    max_leaves=8,
)

values = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=5),
        st.lists(inner, max_size=5).map(tuple),
        st.sets(hashables, max_size=4),
        st.frozensets(hashables, max_size=4),
        st.dictionaries(st.text(max_size=10), inner, max_size=5),
        st.dictionaries(hashables, inner, max_size=4),
    ),
    max_leaves=20,
)

posting_rows = st.lists(
    st.tuples(
        st.frozensets(st.text(max_size=12), min_size=1, max_size=5),
        st.lists(st.text(max_size=16), max_size=5).map(tuple),
    ),
    max_size=6,
).map(PostingList)


class TestRoundTripProperties:
    @settings(max_examples=300)
    @given(values)
    def test_both_codecs_roundtrip(self, value):
        for codec in CODECS:
            assert roundtrip(codec, value) == value

    @settings(max_examples=300)
    @given(values)
    def test_cross_codec_equality(self, value):
        """What one codec carries, the other carries — to an equal value."""
        assert roundtrip(JSON_CODEC, value) == roundtrip(BINARY_CODEC, value)

    @given(st.integers())
    def test_signed_varint_roundtrip(self, value):
        buffer = bytearray()
        write_varint(buffer, value)
        decoded, position = read_varint(buffer, 0)
        assert decoded == value
        assert position == len(buffer)

    @given(st.integers(min_value=0))
    def test_unsigned_varint_roundtrip(self, value):
        buffer = bytearray()
        write_uvarint(buffer, value)
        decoded, position = read_uvarint(buffer, 0)
        assert decoded == value
        assert position == len(buffer)

    @given(st.text(max_size=64))
    def test_raw_string_roundtrip(self, value):
        buffer = bytearray()
        write_str(buffer, value)
        decoded, position = read_str(memoryview(buffer), 0)
        assert decoded == value
        assert position == len(buffer)

    @given(posting_rows)
    def test_posting_list_roundtrip(self, rows):
        decoded = roundtrip(BINARY_CODEC, rows)
        assert type(decoded) is PostingList
        assert decoded == rows
        # The JSON codec sees the same rows as generic nested values.
        assert roundtrip(JSON_CODEC, rows) == list(rows)

    @settings(max_examples=100)
    @given(values)
    def test_encode_determinism(self, value):
        """Same value, same bytes — within a codec (sets are sorted)."""
        for codec in CODECS:
            assert encode(codec, value) == encode(codec, value)


class TestValueDomain:
    def test_type_fidelity(self):
        """tuple/set/frozenset/int-keyed-dict survive both codecs *as
        their own types* — the whole point of the tagged encodings."""
        value = {
            "t": (1, 2),
            "s": {"a", "b"},
            "f": frozenset({3}),
            "d": {7: "seven", (1, 2): "pair"},
        }
        for codec in CODECS:
            decoded = roundtrip(codec, value)
            assert decoded == value
            assert type(decoded["t"]) is tuple
            assert type(decoded["s"]) is set
            assert type(decoded["f"]) is frozenset

    def test_plain_list_does_not_become_posting_list(self):
        rows = [(frozenset({"k"}), ("o",))]
        decoded = roundtrip(BINARY_CODEC, rows)
        assert decoded == rows
        assert type(decoded) is list

    def test_varint_magnitude_edges(self):
        for value in (0, -1, 1, 63, 64, 127, 128, -128, 2**63, -(2**63), 2**200, -(2**200)):
            for codec in CODECS:
                assert roundtrip(codec, value) == value

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_non_finite_floats_rejected_by_both(self, bad):
        for codec in CODECS:
            with pytest.raises(ProtocolError):
                encode(codec, bad)

    def test_unencodable_rejected_by_both(self):
        for codec in CODECS:
            with pytest.raises(ProtocolError):
                encode(codec, object())


class TestBinaryMalformed:
    def test_trailing_bytes_rejected(self):
        data = encode(BINARY_CODEC, {"a": 1}) + b"\x00"
        with pytest.raises(ProtocolError, match="trailing"):
            BINARY_CODEC.decode(data)

    def test_unknown_type_byte(self):
        with pytest.raises(ProtocolError, match="type byte"):
            BINARY_CODEC.decode(b"\xff")

    def test_truncated_string(self):
        data = bytearray(encode(BINARY_CODEC, "hello world"))
        with pytest.raises(ProtocolError):
            BINARY_CODEC.decode(bytes(data[:-3]))

    def test_truncated_container(self):
        data = encode(BINARY_CODEC, [1, 2, 3])
        with pytest.raises(ProtocolError):
            BINARY_CODEC.decode(data[:-1])

    def test_empty_input(self):
        with pytest.raises(ProtocolError):
            BINARY_CODEC.decode(b"")


class TestRegistry:
    def test_by_id(self):
        assert codec_by_id(CODEC_JSON) is JSON_CODEC
        assert codec_by_id(CODEC_BINARY) is BINARY_CODEC
        with pytest.raises(ProtocolError):
            codec_by_id(99)

    def test_by_name(self):
        assert codec_by_name("json") is JSON_CODEC
        assert codec_by_name("binary") is BINARY_CODEC
        assert codec_by_name(BINARY_CODEC) is BINARY_CODEC
        with pytest.raises(ValueError):
            codec_by_name("msgpack")

    def test_new_buffer_is_reused_and_emptied(self):
        first = new_buffer()
        first += b"leftovers"
        second = new_buffer()
        assert second is first
        assert len(second) == 0
