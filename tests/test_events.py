"""Unit tests for the event scheduler."""

import pytest

from repro.sim.events import EventScheduler, SimulationError


class TestScheduling:
    def test_fires_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(5.0, lambda: fired.append("b"))
        sched.schedule(1.0, lambda: fired.append("a"))
        sched.schedule(9.0, lambda: fired.append("c"))
        sched.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sched = EventScheduler()
        fired = []
        for name in "abc":
            sched.schedule(2.0, lambda n=name: fired.append(n))
        sched.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sched = EventScheduler()
        sched.schedule(3.5, lambda: None)
        sched.run()
        assert sched.now == 3.5

    def test_negative_delay_rejected(self):
        sched = EventScheduler()
        with pytest.raises(SimulationError):
            sched.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sched = EventScheduler()
        sched.advance(10.0)
        event = sched.schedule_at(12.0, lambda: None)
        assert event.time == 12.0

    def test_events_scheduled_during_run(self):
        sched = EventScheduler()
        fired = []

        def chain():
            fired.append("first")
            sched.schedule(1.0, lambda: fired.append("second"))

        sched.schedule(1.0, chain)
        sched.run()
        assert fired == ["first", "second"]
        assert sched.now == 2.0


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sched = EventScheduler()
        fired = []
        event = sched.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sched.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        sched = EventScheduler()
        kept = sched.schedule(1.0, lambda: None)
        dropped = sched.schedule(2.0, lambda: None)
        dropped.cancel()
        assert sched.pending == 1
        kept.cancel()
        assert sched.pending == 0


class TestRunUntil:
    def test_stops_at_boundary(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda: fired.append(1))
        sched.schedule(2.0, lambda: fired.append(2))
        sched.schedule(3.0, lambda: fired.append(3))
        sched.run_until(2.0)
        assert fired == [1, 2]
        assert sched.now == 2.0

    def test_clock_set_even_with_no_events(self):
        sched = EventScheduler()
        sched.run_until(7.0)
        assert sched.now == 7.0

    def test_remaining_events_fire_later(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(5.0, lambda: fired.append("late"))
        sched.run_until(1.0)
        assert fired == []
        sched.run()
        assert fired == ["late"]


class TestAdvance:
    def test_advance_moves_clock(self):
        sched = EventScheduler()
        sched.advance(2.5)
        assert sched.now == 2.5

    def test_advance_backwards_rejected(self):
        sched = EventScheduler()
        with pytest.raises(SimulationError):
            sched.advance(-0.1)

    def test_overtaken_events_still_fire(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda: fired.append("x"))
        sched.advance(10.0)
        sched.run()
        assert fired == ["x"]
        assert sched.now == 10.0  # clock never goes backwards


class TestRunLimits:
    def test_max_events(self):
        sched = EventScheduler()
        fired = []
        for i in range(5):
            sched.schedule(float(i), lambda i=i: fired.append(i))
        sched.run(max_events=3)
        assert fired == [0, 1, 2]
        assert sched.events_processed == 3

    def test_step_returns_false_when_empty(self):
        assert EventScheduler().step() is False
