"""Tests for the synthetic corpus, distributions, query logs and Table 1 data."""

import pytest

from repro.workload.corpus import PAPER_MEAN_KEYWORDS, SyntheticCorpus
from repro.workload.distributions import (
    DiscretizedLogNormal,
    EmpiricalDistribution,
    fit_lognormal_to_mean,
)
from repro.workload.pchome import TABLE1_RECORDS, format_records_table
from repro.workload.queries import QueryLogGenerator


class TestDistributions:
    def test_empirical_pmf(self):
        d = EmpiricalDistribution({1: 1.0, 2: 3.0})
        assert d.pmf(2) == 0.75
        assert d.pmf(99) == 0.0

    def test_empirical_mean_mode(self):
        d = EmpiricalDistribution({1: 1.0, 2: 1.0, 3: 2.0})
        assert d.mode() == 3
        assert d.mean() == pytest.approx(2.25)

    def test_from_samples(self):
        d = EmpiricalDistribution.from_samples([1, 1, 2])
        assert d.pmf(1) == pytest.approx(2 / 3)

    def test_sampling_respects_support(self):
        d = EmpiricalDistribution({3: 1.0, 7: 1.0})
        assert set(d.sample_many(100, 1)) <= {3, 7}

    def test_total_variation(self):
        a = EmpiricalDistribution({1: 1.0})
        b = EmpiricalDistribution({2: 1.0})
        assert a.total_variation_distance(b) == 1.0
        assert a.total_variation_distance(a) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution({})
        with pytest.raises(ValueError):
            EmpiricalDistribution({1: -1.0})

    def test_lognormal_support(self):
        d = DiscretizedLogNormal(2.0, 0.5, low=1, high=30)
        assert d.support == list(range(1, 31))

    def test_lognormal_unimodal_right_skewed(self):
        d = fit_lognormal_to_mean(7.3)
        mode = d.mode()
        assert 4 <= mode <= 8
        assert d.mean() > mode - 1  # right skew: mean >= mode region

    def test_fit_hits_paper_mean(self):
        d = fit_lognormal_to_mean(PAPER_MEAN_KEYWORDS)
        assert d.mean() == pytest.approx(7.3, abs=1e-4)

    def test_fit_invalid_mean(self):
        with pytest.raises(ValueError):
            fit_lognormal_to_mean(0.5)


class TestSyntheticCorpus:
    def test_reproducible(self):
        a = SyntheticCorpus.generate(num_objects=50, seed=9)
        b = SyntheticCorpus.generate(num_objects=50, seed=9)
        assert [r.keywords for r in a] == [r.keywords for r in b]

    def test_seeds_differ(self):
        a = SyntheticCorpus.generate(num_objects=50, seed=1)
        b = SyntheticCorpus.generate(num_objects=50, seed=2)
        assert [r.keywords for r in a] != [r.keywords for r in b]

    def test_mean_near_paper(self, small_corpus):
        assert small_corpus.mean_keyword_count() == pytest.approx(7.3, abs=0.8)

    def test_sizes_within_support(self, small_corpus):
        for record in small_corpus:
            assert 1 <= record.keyword_count <= 30

    def test_unique_ids(self, small_corpus):
        ids = small_corpus.object_ids()
        assert len(ids) == len(set(ids))

    def test_lookup_api(self, small_corpus):
        record = small_corpus.records[0]
        assert small_corpus[record.object_id] is record
        assert record.object_id in small_corpus
        assert "nope" not in small_corpus

    def test_zipfian_keyword_popularity(self, small_corpus):
        frequencies = small_corpus.keyword_frequencies()
        counts = sorted(frequencies.values(), reverse=True)
        # Heavy head: most popular keyword much more frequent than median.
        assert counts[0] >= 5 * counts[len(counts) // 2]

    def test_matching_oracle(self, small_corpus):
        record = small_corpus.records[0]
        subset = frozenset(list(record.keywords)[:2])
        matches = small_corpus.matching(subset)
        assert record.object_id in matches
        assert small_corpus.keyword_frequency(subset) == len(matches)

    def test_inverted_index_consistent(self, small_corpus):
        postings = small_corpus.inverted_index()
        frequencies = small_corpus.keyword_frequencies()
        for keyword, ids in postings.items():
            assert len(ids) == frequencies[keyword]

    def test_size_histogram_totals(self, small_corpus):
        assert sum(small_corpus.size_histogram().values()) == len(small_corpus)

    def test_record_fields_populated(self, small_corpus):
        record = small_corpus.records[0]
        assert record.title
        assert record.url.startswith("http://")
        assert len(record.category) == 10
        assert record.description

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticCorpus.generate(num_objects=0)
        with pytest.raises(ValueError):
            SyntheticCorpus([])


class TestQueryLogGenerator:
    @pytest.fixture(scope="class")
    def generator(self, small_corpus):
        return QueryLogGenerator(small_corpus, pool_size=120, seed=5)

    def test_pool_queries_have_matches(self, generator, small_corpus):
        for query in generator.pool[:40]:
            assert small_corpus.keyword_frequency(query) >= 1

    def test_pool_sizes_in_range(self, generator):
        assert {len(q) for q in generator.pool} <= {1, 2, 3, 4, 5}

    def test_pool_distinct(self, generator):
        assert len(set(generator.pool)) == len(generator.pool)

    def test_head_share_calibrated(self, generator):
        stream = generator.generate(4000)
        share = QueryLogGenerator.head_share_of(stream, 10)
        assert share == pytest.approx(0.6, abs=0.06)

    def test_timestamps_sorted_within_duration(self, generator):
        stream = generator.generate(100, duration=1000.0)
        times = [q.time for q in stream]
        assert times == sorted(times)
        assert all(0 <= t <= 1000.0 for t in times)

    def test_popular_sets_filters_size(self, generator):
        for size in (1, 2, 3):
            for query in generator.popular_sets(size, 5):
                assert len(query) == size

    def test_popular_sets_ranked(self, generator):
        # popular_sets(1, k) must be the top singles by frequency bound.
        singles = generator.popular_sets(1, 3)
        bounds = [generator._popularity_bound(q) for q in singles]
        assert bounds == sorted(bounds, reverse=True)

    def test_generate_count(self, generator):
        assert len(generator.generate(0)) == 0
        assert len(generator.generate(17)) == 17

    def test_invalid_params(self, small_corpus):
        with pytest.raises(ValueError):
            QueryLogGenerator(small_corpus, pool_size=5, top_queries=10)


class TestTable1:
    def test_paper_rows_present(self):
        assert TABLE1_RECORDS[0].title == "Hinet"
        assert TABLE1_RECORDS[1].object_id == "18491"
        assert "news" in TABLE1_RECORDS[1].keywords

    def test_format_table(self):
        table = format_records_table(TABLE1_RECORDS)
        lines = table.splitlines()
        assert lines[0].startswith("ID")
        assert "http://www.hinet.net" in table
        assert len(lines) == 2 + len(TABLE1_RECORDS)
