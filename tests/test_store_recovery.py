"""Crash-recovery integration: nodes come back with their state.

The acceptance bar for the durability subsystem: a node killed and
restarted from its ``--data-dir`` serves its full shard — superset
search over the survivors returns exactly what an uninterrupted run
returns (100% recall parity), with no re-publish.  Covered at three
levels: a whole durable :class:`~repro.net.cluster.LocalCluster` torn
down and rebuilt, one :class:`~repro.net.node.NodeDaemon` of a
multi-daemon deployment crash-stopped and restarted over TCP, and
churn handoff (evacuate/rebalance) persisted across a restart.  The CI
smoke job (``scripts/crash_recovery_smoke.py``) repeats the daemon
scenario with a real ``SIGKILL`` across process boundaries.
"""

import os
import signal

from repro.core.config import ServiceConfig
from repro.core.service import KeywordSearchService
from repro.net.cluster import LocalCluster
from repro.net.node import NodeDaemon, cluster_addresses
from repro.store.file import FileStore

CONFIG = ServiceConfig(dimension=6, num_dht_nodes=8, seed=11)

CORPUS = [
    ("paper.pdf", {"dht", "search", "p2p"}),
    ("slides.ppt", {"dht", "search"}),
    ("notes.txt", {"p2p", "overlay"}),
    ("code.tar", {"dht", "overlay", "chord"}),
    ("data.csv", {"search"}),
    ("thesis.pdf", {"dht", "p2p", "overlay", "search"}),
]

QUERIES = [{"dht"}, {"search"}, {"p2p"}, {"overlay"}, {"dht", "search"}]


def publish_all(service: KeywordSearchService) -> None:
    for object_id, keywords in CORPUS:
        service.publish(object_id, keywords)


def query_all(service: KeywordSearchService, origin: int | None = None) -> dict:
    return {
        tuple(sorted(query)): service.superset_search(query, origin=origin).results()
        for query in QUERIES
    }


def test_durable_cluster_restart_has_full_recall(tmp_path):
    """Tear a durable cluster down and rebuild it over the same data
    directory: every shard and reference table comes back, and results
    match an uninterrupted (memory-only) run exactly."""
    baseline_service = KeywordSearchService.create(CONFIG)
    publish_all(baseline_service)
    baseline = query_all(baseline_service)

    with LocalCluster(CONFIG, data_dir=tmp_path) as cluster:
        publish_all(cluster.service)
        first_life = query_all(cluster.service)
    assert first_life == baseline

    # Rebuild over the same directory — no publish this time.
    with LocalCluster(CONFIG, data_dir=tmp_path) as reborn:
        second_life = query_all(reborn.service)
        assert second_life == baseline  # 100% recall parity
        # The references came back too, not just the index.
        assert tuple(reborn.service.read("paper.pdf")) == tuple(
            baseline_service.read("paper.pdf")
        )
        # Replica accounting survived: re-publishing is recognized as a
        # duplicate (not a first copy), so nothing is double-indexed.
        assert reborn.service.index.insert(
            "paper.pdf", {"dht", "search", "p2p"}, reborn.addresses()[0]
        ) is False
        assert (
            reborn.service.index.total_indexed()
            == baseline_service.index.total_indexed()
        )


def test_kill_and_restart_one_daemon_serves_its_shard(tmp_path):
    """Crash-stop one daemon of a four-daemon TCP deployment (its WAL
    unflushed-at-exit, exactly the on-disk image kill -9 leaves given
    per-append flushing), restart it on the same port from the same
    data-dir, and search from a survivor: full recall, no re-publish."""
    config = ServiceConfig(dimension=6, num_dht_nodes=4, seed=7)
    addresses = cluster_addresses(config)
    load = _simulated_load(config)
    victim = max(addresses, key=lambda a: load.get(a, 0))  # a shard-heavy node
    searcher = next(a for a in addresses if a != victim)

    daemons = {
        address: NodeDaemon(config, address, data_dir=tmp_path) for address in addresses
    }
    try:
        for address, daemon in daemons.items():
            for other, peer in daemons.items():
                if other != address:
                    daemon.transport.peers[other] = peer.endpoint
        publish_all(daemons[addresses[0]].service)
        baseline = query_all(daemons[searcher].service, origin=searcher)
        assert any(results for results in baseline.values())

        victim_port = daemons[victim].endpoint[1]
        victim_store = daemons[victim].store
        assert isinstance(victim_store, FileStore)
        victim_store.abort()  # crash analog: no graceful close
        daemons[victim].close()

        peers = {
            other: daemon.endpoint for other, daemon in daemons.items() if other != victim
        }
        daemons[victim] = NodeDaemon(
            config, victim, port=victim_port, peers=peers, data_dir=tmp_path
        )
        # Survivors keep their peer book: same host, same port.
        after = query_all(daemons[searcher].service, origin=searcher)
        assert after == baseline  # 100% recall parity across the crash
    finally:
        for daemon in daemons.values():
            daemon.close()


def _simulated_load(config: ServiceConfig) -> dict[int, int]:
    """Index load per address for this deployment's corpus (computed on
    a throwaway simulated stack — the deterministic-deployment trick)."""
    service = KeywordSearchService.create(config)
    publish_all(service)
    return service.index.load_by_physical_node()


def test_evacuation_and_rebalance_survive_restart(tmp_path):
    """Churn handoff is durable on both ends: the drop on the leaver and
    the puts on the receivers are WAL'd, so a full restart plus a
    rebalance restores the uninterrupted placement and results."""
    def factory(address: int) -> FileStore:
        return FileStore(tmp_path / f"node-{address}")

    baseline_service = KeywordSearchService.create(CONFIG)
    publish_all(baseline_service)
    baseline = query_all(baseline_service)

    service = KeywordSearchService.create(CONFIG, store_factory=factory)
    publish_all(service)
    leaving = max(service.index.load_by_physical_node().items(), key=lambda kv: kv[1])[0]
    moved = service.index.evacuate(leaving)
    assert moved > 0
    service.close_stores()

    reborn = KeywordSearchService.create(CONFIG, store_factory=factory)
    # The leaver's durable state no longer holds what it handed off.
    assert reborn.index.shard_at(leaving).load(namespace="main") == 0
    # Full membership again: a rebalance brings the entries home...
    assert reborn.index.rebalance() == moved
    # ...and recall is whole.
    assert query_all(reborn) == baseline
    assert reborn.index.total_indexed() == baseline_service.index.total_indexed()


def test_daemon_sigterm_graceful_shutdown(tmp_path):
    """SIGTERM lands in the daemon's handler, requests shutdown, and the
    wind-down closes the store (WAL fsynced) and the stats server."""
    config = ServiceConfig(dimension=6, num_dht_nodes=4, seed=7)
    address = cluster_addresses(config)[0]
    previous_term = signal.getsignal(signal.SIGTERM)
    previous_int = signal.getsignal(signal.SIGINT)
    daemon = NodeDaemon(config, address, data_dir=tmp_path, stats_port=0)
    try:
        daemon.install_signal_handlers()
        assert not daemon.shutdown_requested
        os.kill(os.getpid(), signal.SIGTERM)
        daemon.transport.sleep(50)  # give the signal a bytecode boundary
        assert daemon.shutdown_requested
        store = daemon.store
        daemon.close()
        assert daemon.stats is None
        with open(store.wal_path, "rb") as handle:  # closed cleanly, readable
            handle.read()
    finally:
        daemon.close()
        signal.signal(signal.SIGTERM, previous_term)
        signal.signal(signal.SIGINT, previous_int)
