"""Unit tests for the per-node query caches."""

import pytest

from repro.core.cache import CachedResult, FifoQueryCache, LruQueryCache


def results(*ids: str) -> tuple:
    return tuple((object_id, frozenset({"kw"})) for object_id in ids)


class TestCachedResult:
    def test_size(self):
        assert CachedResult(results("a", "b"), complete=True).size == 2

    def test_complete_satisfies_anything(self):
        entry = CachedResult(results("a"), complete=True)
        assert entry.satisfies(None)
        assert entry.satisfies(100)

    def test_partial_satisfies_only_covered_thresholds(self):
        entry = CachedResult(results("a", "b", "c"), complete=False)
        assert entry.satisfies(2)
        assert entry.satisfies(3)
        assert not entry.satisfies(4)
        assert not entry.satisfies(None)


class TestCapacityEntriesUnit:
    def test_stores_up_to_capacity(self):
        cache = FifoQueryCache(2)
        assert cache.put(frozenset({"a"}), results("x" * 1, "y", "z"), complete=True)
        assert cache.put(frozenset({"b"}), results("q"), complete=True)
        assert len(cache) == 2

    def test_fifo_eviction_order(self):
        cache = FifoQueryCache(2)
        cache.put(frozenset({"a"}), results("1"), complete=True)
        cache.put(frozenset({"b"}), results("2"), complete=True)
        cache.put(frozenset({"c"}), results("3"), complete=True)
        assert frozenset({"a"}) not in cache
        assert frozenset({"b"}) in cache
        assert frozenset({"c"}) in cache

    def test_fifo_hit_does_not_refresh(self):
        cache = FifoQueryCache(2)
        cache.put(frozenset({"a"}), results("1"), complete=True)
        cache.put(frozenset({"b"}), results("2"), complete=True)
        cache.get(frozenset({"a"}), None)  # hit, but FIFO ignores recency
        cache.put(frozenset({"c"}), results("3"), complete=True)
        assert frozenset({"a"}) not in cache

    def test_lru_hit_refreshes(self):
        cache = LruQueryCache(2)
        cache.put(frozenset({"a"}), results("1"), complete=True)
        cache.put(frozenset({"b"}), results("2"), complete=True)
        cache.get(frozenset({"a"}), None)
        cache.put(frozenset({"c"}), results("3"), complete=True)
        assert frozenset({"a"}) in cache
        assert frozenset({"b"}) not in cache

    def test_zero_capacity_stores_nothing(self):
        cache = FifoQueryCache(0)
        assert not cache.put(frozenset({"a"}), results("1"), complete=True)
        assert len(cache) == 0

    def test_reput_replaces(self):
        cache = FifoQueryCache(3)
        cache.put(frozenset({"a"}), results("1"), complete=False)
        cache.put(frozenset({"a"}), results("1", "2"), complete=True)
        entry = cache.get(frozenset({"a"}), None)
        assert entry is not None and entry.size == 2
        assert cache.used == 1  # entries unit: one per query


class TestCapacityReferencesUnit:
    def test_oversized_entry_not_cached(self):
        cache = FifoQueryCache(2, unit="references")
        assert not cache.put(frozenset({"a"}), results("1", "2", "3"), complete=True)
        assert len(cache) == 0

    def test_oversized_reput_leaves_previous_entry_intact(self):
        # A rejected oversized entry must not evict what it was meant to
        # replace: the smaller existing entry keeps serving.
        cache = FifoQueryCache(2, unit="references")
        assert cache.put(frozenset({"a"}), results("1", "2"), complete=False)
        assert not cache.put(frozenset({"a"}), results("1", "2", "3"), complete=True)
        entry = cache.get(frozenset({"a"}), 2)
        assert entry is not None and entry.size == 2
        assert cache.used == 2

    def test_oversized_reput_does_not_evict_other_entries(self):
        cache = FifoQueryCache(2, unit="references")
        cache.put(frozenset({"a"}), results("1"), complete=True)
        cache.put(frozenset({"b"}), results("2"), complete=True)
        assert not cache.put(frozenset({"b"}), results("2", "3", "4"), complete=True)
        assert frozenset({"a"}) in cache and frozenset({"b"}) in cache

    def test_eviction_frees_reference_units(self):
        cache = FifoQueryCache(3, unit="references")
        cache.put(frozenset({"a"}), results("1", "2"), complete=True)
        cache.put(frozenset({"b"}), results("3", "4"), complete=True)
        assert frozenset({"a"}) not in cache
        assert cache.used == 2

    def test_invalid_unit(self):
        with pytest.raises(ValueError):
            FifoQueryCache(1, unit="bytes")


class TestGetSemantics:
    def test_miss_on_absent(self):
        cache = FifoQueryCache(4)
        assert cache.get(frozenset({"nope"}), None) is None
        assert cache.misses == 1

    def test_miss_on_insufficient_partial(self):
        cache = FifoQueryCache(4)
        cache.put(frozenset({"a"}), results("1"), complete=False)
        assert cache.get(frozenset({"a"}), 5) is None

    def test_hit_counts(self):
        cache = FifoQueryCache(4)
        cache.put(frozenset({"a"}), results("1"), complete=True)
        cache.get(frozenset({"a"}), None)
        cache.get(frozenset({"a"}), 1)
        assert cache.hits == 2
        assert cache.hit_rate == pytest.approx(1.0)

    def test_hit_rate_empty(self):
        assert FifoQueryCache(1).hit_rate == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            FifoQueryCache(-1)
