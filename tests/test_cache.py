"""Unit tests for the per-node query caches."""

import pytest

from repro.core.cache import CachedResult, FifoQueryCache, LruQueryCache


def results(*ids: str) -> tuple:
    return tuple((object_id, frozenset({"kw"})) for object_id in ids)


class TestCachedResult:
    def test_size(self):
        assert CachedResult(results("a", "b"), complete=True).size == 2

    def test_complete_satisfies_anything(self):
        entry = CachedResult(results("a"), complete=True)
        assert entry.satisfies(None)
        assert entry.satisfies(100)

    def test_partial_satisfies_only_covered_thresholds(self):
        entry = CachedResult(results("a", "b", "c"), complete=False)
        assert entry.satisfies(2)
        assert entry.satisfies(3)
        assert not entry.satisfies(4)
        assert not entry.satisfies(None)


class TestCapacityEntriesUnit:
    def test_stores_up_to_capacity(self):
        cache = FifoQueryCache(2)
        assert cache.put(frozenset({"a"}), results("x" * 1, "y", "z"), complete=True)
        assert cache.put(frozenset({"b"}), results("q"), complete=True)
        assert len(cache) == 2

    def test_fifo_eviction_order(self):
        cache = FifoQueryCache(2)
        cache.put(frozenset({"a"}), results("1"), complete=True)
        cache.put(frozenset({"b"}), results("2"), complete=True)
        cache.put(frozenset({"c"}), results("3"), complete=True)
        assert frozenset({"a"}) not in cache
        assert frozenset({"b"}) in cache
        assert frozenset({"c"}) in cache

    def test_fifo_hit_does_not_refresh(self):
        cache = FifoQueryCache(2)
        cache.put(frozenset({"a"}), results("1"), complete=True)
        cache.put(frozenset({"b"}), results("2"), complete=True)
        cache.get(frozenset({"a"}), None)  # hit, but FIFO ignores recency
        cache.put(frozenset({"c"}), results("3"), complete=True)
        assert frozenset({"a"}) not in cache

    def test_lru_hit_refreshes(self):
        cache = LruQueryCache(2)
        cache.put(frozenset({"a"}), results("1"), complete=True)
        cache.put(frozenset({"b"}), results("2"), complete=True)
        cache.get(frozenset({"a"}), None)
        cache.put(frozenset({"c"}), results("3"), complete=True)
        assert frozenset({"a"}) in cache
        assert frozenset({"b"}) not in cache

    def test_zero_capacity_stores_nothing(self):
        cache = FifoQueryCache(0)
        assert not cache.put(frozenset({"a"}), results("1"), complete=True)
        assert len(cache) == 0

    def test_reput_replaces(self):
        cache = FifoQueryCache(3)
        cache.put(frozenset({"a"}), results("1"), complete=False)
        cache.put(frozenset({"a"}), results("1", "2"), complete=True)
        entry = cache.get(frozenset({"a"}), None)
        assert entry is not None and entry.size == 2
        assert cache.used == 1  # entries unit: one per query


class TestCapacityReferencesUnit:
    def test_oversized_entry_not_cached(self):
        cache = FifoQueryCache(2, unit="references")
        assert not cache.put(frozenset({"a"}), results("1", "2", "3"), complete=True)
        assert len(cache) == 0

    def test_oversized_reput_leaves_previous_entry_intact(self):
        # A rejected oversized entry must not evict what it was meant to
        # replace: the smaller existing entry keeps serving.
        cache = FifoQueryCache(2, unit="references")
        assert cache.put(frozenset({"a"}), results("1", "2"), complete=False)
        assert not cache.put(frozenset({"a"}), results("1", "2", "3"), complete=True)
        entry = cache.get(frozenset({"a"}), 2)
        assert entry is not None and entry.size == 2
        assert cache.used == 2

    def test_oversized_reput_does_not_evict_other_entries(self):
        cache = FifoQueryCache(2, unit="references")
        cache.put(frozenset({"a"}), results("1"), complete=True)
        cache.put(frozenset({"b"}), results("2"), complete=True)
        assert not cache.put(frozenset({"b"}), results("2", "3", "4"), complete=True)
        assert frozenset({"a"}) in cache and frozenset({"b"}) in cache

    def test_eviction_frees_reference_units(self):
        cache = FifoQueryCache(3, unit="references")
        cache.put(frozenset({"a"}), results("1", "2"), complete=True)
        cache.put(frozenset({"b"}), results("3", "4"), complete=True)
        assert frozenset({"a"}) not in cache
        assert cache.used == 2

    def test_invalid_unit(self):
        with pytest.raises(ValueError):
            FifoQueryCache(1, unit="bytes")


class TestGetSemantics:
    def test_miss_on_absent(self):
        cache = FifoQueryCache(4)
        assert cache.get(frozenset({"nope"}), None) is None
        assert cache.misses == 1

    def test_miss_on_insufficient_partial(self):
        cache = FifoQueryCache(4)
        cache.put(frozenset({"a"}), results("1"), complete=False)
        assert cache.get(frozenset({"a"}), 5) is None

    def test_hit_counts(self):
        cache = FifoQueryCache(4)
        cache.put(frozenset({"a"}), results("1"), complete=True)
        cache.get(frozenset({"a"}), None)
        cache.get(frozenset({"a"}), 1)
        assert cache.hits == 2
        assert cache.hit_rate == pytest.approx(1.0)

    def test_hit_rate_empty(self):
        assert FifoQueryCache(1).hit_rate == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            FifoQueryCache(-1)

class TestCoherencePrimitives:
    def test_drop_removes_and_counts_invalidation(self):
        cache = FifoQueryCache(4)
        cache.put(frozenset({"a"}), results("1"), complete=True)
        assert cache.drop(frozenset({"a"}))
        assert frozenset({"a"}) not in cache
        assert cache.invalidations == 1
        assert cache.evictions == 0
        assert cache.used == 0

    def test_drop_absent_is_noop(self):
        cache = FifoQueryCache(4)
        assert not cache.drop(frozenset({"a"}))
        assert cache.invalidations == 0

    def test_replace_patches_in_place(self):
        cache = FifoQueryCache(4, unit="references")
        cache.put(frozenset({"a"}), results("1", "2"), complete=True)
        cache.replace(frozenset({"a"}), CachedResult(results("1"), True))
        entry = cache.get(frozenset({"a"}), None)
        assert entry is not None and entry.size == 1
        assert cache.used == 1
        assert cache.invalidations == 1

    def test_replace_preserves_eviction_position(self):
        # A patched entry is not a new arrival: it keeps its FIFO slot
        # and is still evicted first.
        cache = FifoQueryCache(2)
        cache.put(frozenset({"a"}), results("1", "2"), complete=True)
        cache.put(frozenset({"b"}), results("3"), complete=True)
        cache.replace(frozenset({"a"}), CachedResult(results("1"), True))
        cache.put(frozenset({"c"}), results("4"), complete=True)
        assert frozenset({"a"}) not in cache
        assert frozenset({"b"}) in cache

    def test_replace_absent_raises(self):
        cache = FifoQueryCache(4)
        with pytest.raises(KeyError):
            cache.replace(frozenset({"a"}), CachedResult(results("1"), True))

    def test_matching_keys_is_materialized(self):
        cache = FifoQueryCache(4)
        cache.put(frozenset({"a"}), results("1"), complete=True)
        cache.put(frozenset({"a", "b"}), results("2"), complete=True)
        keys = cache.matching_keys(lambda key: "a" in key)
        assert sorted(len(k) for k in keys) == [1, 2]
        for key in keys:  # safe to mutate while consuming
            cache.drop(key)
        assert len(cache) == 0

    def test_peek_has_no_accounting(self):
        cache = FifoQueryCache(4)
        cache.put(frozenset({"a"}), results("1"), complete=True)
        assert cache.peek(frozenset({"a"})) is not None
        assert cache.peek(frozenset({"zzz"})) is None
        assert cache.hits == 0 and cache.misses == 0

    def test_eviction_counter(self):
        cache = FifoQueryCache(1)
        cache.put(frozenset({"a"}), results("1"), complete=True)
        cache.put(frozenset({"b"}), results("2"), complete=True)
        assert cache.evictions == 1
        assert cache.invalidations == 0


class TestOptimumCapacities:
    def test_sums_to_budget(self):
        from repro.core.cache import optimum_capacities

        caps = optimum_capacities(100, [0.0, 10.0, 90.0, 3.0])
        assert sum(caps) == 100
        assert all(c >= 0 for c in caps)

    def test_sqrt_scaling_favours_loaded_nodes_sublinearly(self):
        from repro.core.cache import optimum_capacities

        caps = optimum_capacities(1000, [0.0, 99.0])
        # sqrt(1):sqrt(100) = 1:10 split, far from the 0:1000 a linear
        # rule would give.
        assert caps == [91, 909]

    def test_uniform_sizing(self):
        from repro.core.cache import CacheSizing, optimum_capacities

        caps = optimum_capacities(10, [1.0, 100.0, 10000.0], sizing=CacheSizing.UNIFORM)
        assert sum(caps) == 10
        assert max(caps) - min(caps) <= 1

    def test_empty_weights(self):
        from repro.core.cache import optimum_capacities

        assert optimum_capacities(10, []) == []

    def test_negative_inputs_rejected(self):
        from repro.core.cache import optimum_capacities

        with pytest.raises(ValueError):
            optimum_capacities(-1, [1.0])
        with pytest.raises(ValueError):
            optimum_capacities(1, [-1.0])

    def test_deterministic(self):
        from repro.core.cache import optimum_capacities

        weights = [5.0, 5.0, 5.0, 2.0]
        assert optimum_capacities(7, weights) == optimum_capacities(7, weights)


class TestSpeculativeAdmission:
    """Cooperative path fills (docs/protocol.md §16) must never make
    the demand tier worse: they claim free space or displace each
    other, lose to any demand insert, and earn protection only by
    serving a hit (promotion)."""

    def test_fill_lands_in_free_space(self):
        cache = FifoQueryCache(2)
        assert cache.put(frozenset({"a"}), results("1"), complete=True, speculative=True)
        assert frozenset({"a"}) in cache

    def test_fill_never_displaces_demand(self):
        cache = FifoQueryCache(2)
        cache.put(frozenset({"a"}), results("1"), complete=True)
        cache.put(frozenset({"b"}), results("2"), complete=True)
        assert not cache.put(
            frozenset({"c"}), results("3"), complete=True, speculative=True
        )
        assert frozenset({"a"}) in cache and frozenset({"b"}) in cache
        assert cache.evictions == 0

    def test_fill_displaces_older_fill(self):
        cache = FifoQueryCache(2)
        cache.put(frozenset({"a"}), results("1"), complete=True)
        cache.put(frozenset({"b"}), results("2"), complete=True, speculative=True)
        assert cache.put(
            frozenset({"c"}), results("3"), complete=True, speculative=True
        )
        assert frozenset({"a"}) in cache
        assert frozenset({"b"}) not in cache
        assert frozenset({"c"}) in cache

    def test_demand_insert_evicts_speculative_first(self):
        cache = FifoQueryCache(2)
        cache.put(frozenset({"spec"}), results("1"), complete=True, speculative=True)
        cache.put(frozenset({"old"}), results("2"), complete=True)
        cache.put(frozenset({"new"}), results("3"), complete=True)
        # FIFO alone would evict "spec" anyway; make the preference
        # observable by aging the demand entry *before* the fill.
        cache = FifoQueryCache(2)
        cache.put(frozenset({"old"}), results("2"), complete=True)
        cache.put(frozenset({"spec"}), results("1"), complete=True, speculative=True)
        cache.put(frozenset({"new"}), results("3"), complete=True)
        assert frozenset({"old"}) in cache  # older, but demand-tier
        assert frozenset({"spec"}) not in cache

    def test_promotion_protects_a_proven_fill(self):
        cache = FifoQueryCache(2)
        cache.put(frozenset({"old"}), results("2"), complete=True)
        cache.put(frozenset({"spec"}), results("1"), complete=True, speculative=True)
        cache.promote(frozenset({"spec"}))
        cache.put(frozenset({"new"}), results("3"), complete=True)
        # With no speculative victim left, plain FIFO applies: the
        # oldest demand entry goes, the promoted fill survives.
        assert frozenset({"spec"}) in cache
        assert frozenset({"old"}) not in cache

    def test_promote_absent_key_is_noop(self):
        cache = FifoQueryCache(2)
        cache.promote(frozenset({"nothing"}))  # must not raise

    def test_coherence_patch_preserves_tier(self):
        cache = FifoQueryCache(2)
        cache.put(frozenset({"spec"}), results("1", "2"), complete=True, speculative=True)
        cache.replace(frozenset({"spec"}), CachedResult(results("1"), complete=True))
        # Still speculative: a demand insert under pressure removes it.
        cache.put(frozenset({"a"}), results("3"), complete=True)
        cache.put(frozenset({"b"}), results("4"), complete=True)
        assert frozenset({"spec"}) not in cache
