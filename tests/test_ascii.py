"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis.ascii import ascii_chart, chart_experiment
from repro.experiments.harness import ExperimentResult


class TestAsciiChart:
    def test_basic_rendering(self):
        chart = ascii_chart({"line": [(0, 0.0), (1, 1.0)]}, width=20, height=6)
        lines = chart.splitlines()
        assert any("*" in line for line in lines)
        assert "* = line" in lines[-1]

    def test_extremes_mapped_to_corners(self):
        chart = ascii_chart({"d": [(0, 0.0), (10, 5.0)]}, width=12, height=5)
        rows = chart.splitlines()
        assert rows[0].endswith("*")  # max y, max x -> top right
        plot_rows = [row.split("|", 1)[1] for row in rows if "|" in row]
        assert plot_rows[-1].startswith("*")  # min at bottom left

    def test_multiple_series_distinct_markers(self):
        chart = ascii_chart(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]}, width=16, height=5
        )
        assert "* = a" in chart
        assert "o = b" in chart

    def test_axis_labels(self):
        chart = ascii_chart({"a": [(0, 0), (1, 2)]}, x_label="alpha", y_label="cost")
        assert "x: alpha" in chart
        assert "y: cost" in chart

    def test_flat_series_does_not_crash(self):
        chart = ascii_chart({"flat": [(0, 3.0), (5, 3.0)]}, width=10, height=4)
        assert "*" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({}, width=20, height=6)
        with pytest.raises(ValueError):
            ascii_chart({"a": [(0, 0)]}, width=2, height=6)


class TestChartExperiment:
    def make_result(self):
        return ExperimentResult(
            "demo",
            "d",
            {},
            [
                {"scheme": "a", "x": 0, "y": 0.1},
                {"scheme": "a", "x": 1, "y": 0.4},
                {"scheme": "b", "x": 0, "y": 0.9},
                {"scheme": "b", "x": 1, "y": 0.2},
            ],
        )

    def test_grouped_chart(self):
        chart = chart_experiment(self.make_result(), group_by="scheme", x="x", y="y")
        assert "* = a" in chart
        assert "o = b" in chart

    def test_ungrouped_chart(self):
        chart = chart_experiment(self.make_result(), group_by=None, x="x", y="y")
        assert "* = demo" in chart

    def test_missing_columns_skipped(self):
        result = ExperimentResult("demo", "d", {}, [{"x": 1}, {"scheme": "a", "x": 0, "y": 1}])
        chart = chart_experiment(result, group_by="scheme", x="x", y="y")
        assert "* = a" in chart

    def test_no_usable_rows(self):
        result = ExperimentResult("demo", "d", {}, [{"other": 1}])
        with pytest.raises(ValueError):
            chart_experiment(result, group_by="scheme", x="x", y="y")
