"""Tests for index migration under churn (rebalance / evacuate)."""

import pytest

from repro.core.index import HypercubeIndex
from repro.core.search import SuperSetSearch
from repro.dht.chord import ChordNetwork
from repro.hypercube.hypercube import Hypercube

ITEMS = [
    (f"obj-{i}", frozenset({f"kw{i % 7}", f"kw{(i * 3) % 7}", "base"}))
    for i in range(50)
]


@pytest.fixture()
def stack():
    ring = ChordNetwork.build(bits=16, num_nodes=8, seed=71)
    index = HypercubeIndex(Hypercube(6), ring)
    index.bulk_load(ITEMS)
    return ring, index


class TestRebalance:
    def test_rebalance_noop_when_placement_unchanged(self, stack):
        _, index = stack
        assert index.rebalance() == 0

    def test_rebalance_after_joins_restores_placement(self, stack):
        ring, index = stack
        bootstrap = ring.any_address()
        joined = 0
        for address in range(0, 65536, 4096):
            if address not in ring.nodes:
                ring.join(address, bootstrap)
                joined += 1
        ring.stabilize_all(rounds=2)
        assert joined >= 10
        moved = index.rebalance()
        assert moved > 0  # with 10+ joins some logical nodes must move
        # Every table now sits at its owner.
        for address in ring.addresses():
            shard = index.shard_at(address)
            for namespace, logical in shard.tables:
                if namespace == index.namespace:
                    assert index.mapping.physical_owner(logical) == address

    def test_rebalance_preserves_content_and_search(self, stack):
        ring, index = stack
        before = index.total_indexed()
        bootstrap = ring.any_address()
        for address in range(100, 65536, 3000):
            if address not in ring.nodes:
                ring.join(address, bootstrap)
        ring.stabilize_all(rounds=2)
        index.rebalance()
        assert index.total_indexed() == before
        result = SuperSetSearch(index).run({"base"})
        assert len(result.objects) == len(ITEMS)

    def test_rebalance_is_idempotent(self, stack):
        ring, index = stack
        bootstrap = ring.any_address()
        for address in range(200, 65536, 5000):
            if address not in ring.nodes:
                ring.join(address, bootstrap)
        ring.stabilize_all(rounds=2)
        index.rebalance()
        assert index.rebalance() == 0


class TestEvacuate:
    def test_graceful_leave_preserves_everything(self, stack):
        ring, index = stack
        before = index.total_indexed()
        victim = ring.addresses()[0]
        moved = index.evacuate(victim)
        ring.leave(victim)
        ring.stabilize_all(rounds=2)
        assert index.total_indexed() == before
        result = SuperSetSearch(index).run({"base"})
        assert len(result.objects) == len(ITEMS)
        # The victim's shard is empty for this namespace.
        assert moved >= 0

    def test_evacuate_places_at_post_departure_owner(self, stack):
        ring, index = stack
        victim = ring.addresses()[2]
        victim_logicals = [
            logical
            for (namespace, logical) in index.shard_at(victim).tables
            if namespace == index.namespace
        ]
        index.evacuate(victim)
        ring.leave(victim)
        ring.stabilize_all(rounds=2)
        index.mapping.invalidate_placement_cache()
        for logical in victim_logicals:
            owner = index.mapping.physical_owner(logical)
            shard = index.shard_at(owner)
            assert (index.namespace, logical) in shard.tables

    def test_evacuate_unknown_rejected(self, stack):
        _, index = stack
        with pytest.raises(ValueError):
            index.evacuate(999_999)

    def test_abrupt_leave_loses_data_evacuate_prevents_it(self):
        # Contrast test: the whole point of evacuate.
        ring = ChordNetwork.build(bits=16, num_nodes=8, seed=72)
        index = HypercubeIndex(Hypercube(6), ring)
        index.bulk_load(ITEMS)
        total = index.total_indexed()
        victim = max(
            ring.addresses(),
            key=lambda a: index.shard_at(a).load(namespace=index.namespace),
        )
        lost = index.shard_at(victim).load(namespace=index.namespace)
        assert lost > 0
        ring.leave(victim)  # abrupt: data gone with the node
        assert index.total_indexed() == total - lost
