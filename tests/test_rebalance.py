"""Tests for index migration under churn (rebalance / evacuate).

The ``stack`` fixture is parametrized over the store backend: the
in-memory default and the durable :class:`~repro.store.file.FileStore`
(WAL + snapshots) — the transfers and drops churn performs must behave
identically when every mutation is journalled, and the dedicated
durability tests pin that a *restart* after churn recovers the
post-churn placement (handed-off tables present at the new owner, and
not resurrected at the old one).
"""

import pytest

from repro.core.index import HypercubeIndex
from repro.core.search import SuperSetSearch
from repro.dht.chord import ChordNetwork
from repro.hypercube.hypercube import Hypercube
from repro.store.file import FileStore

ITEMS = [
    (f"obj-{i}", frozenset({f"kw{i % 7}", f"kw{(i * 3) % 7}", "base"}))
    for i in range(50)
]


def _build(seed: int, store_dir=None):
    ring = ChordNetwork.build(bits=16, num_nodes=8, seed=seed)
    stores = {}
    if store_dir is not None:
        stores = {a: FileStore(store_dir / f"node-{a}") for a in ring.addresses()}
    index = HypercubeIndex(Hypercube(6), ring, stores=stores)
    return ring, index, stores


@pytest.fixture(params=["memory", "file"])
def stack(request, tmp_path):
    store_dir = tmp_path if request.param == "file" else None
    ring, index, _ = _build(71, store_dir)
    index.bulk_load(ITEMS)
    return ring, index


class TestRebalance:
    def test_rebalance_noop_when_placement_unchanged(self, stack):
        _, index = stack
        assert index.rebalance() == 0

    def test_rebalance_after_joins_restores_placement(self, stack):
        ring, index = stack
        bootstrap = ring.any_address()
        joined = 0
        for address in range(0, 65536, 4096):
            if address not in ring.nodes:
                ring.join(address, bootstrap)
                joined += 1
        ring.stabilize_all(rounds=2)
        assert joined >= 10
        moved = index.rebalance()
        assert moved > 0  # with 10+ joins some logical nodes must move
        # Every table now sits at its owner.
        for address in ring.addresses():
            shard = index.shard_at(address)
            for namespace, logical in shard.tables:
                if namespace == index.namespace:
                    assert index.mapping.physical_owner(logical) == address

    def test_rebalance_preserves_content_and_search(self, stack):
        ring, index = stack
        before = index.total_indexed()
        bootstrap = ring.any_address()
        for address in range(100, 65536, 3000):
            if address not in ring.nodes:
                ring.join(address, bootstrap)
        ring.stabilize_all(rounds=2)
        index.rebalance()
        assert index.total_indexed() == before
        result = SuperSetSearch(index).run({"base"})
        assert len(result.objects) == len(ITEMS)

    def test_rebalance_is_idempotent(self, stack):
        ring, index = stack
        bootstrap = ring.any_address()
        for address in range(200, 65536, 5000):
            if address not in ring.nodes:
                ring.join(address, bootstrap)
        ring.stabilize_all(rounds=2)
        index.rebalance()
        assert index.rebalance() == 0


class TestEvacuate:
    def test_graceful_leave_preserves_everything(self, stack):
        ring, index = stack
        before = index.total_indexed()
        victim = ring.addresses()[0]
        moved = index.evacuate(victim)
        ring.leave(victim)
        ring.stabilize_all(rounds=2)
        assert index.total_indexed() == before
        result = SuperSetSearch(index).run({"base"})
        assert len(result.objects) == len(ITEMS)
        # The victim's shard is empty for this namespace.
        assert moved >= 0

    def test_evacuate_places_at_post_departure_owner(self, stack):
        ring, index = stack
        victim = ring.addresses()[2]
        victim_logicals = [
            logical
            for (namespace, logical) in index.shard_at(victim).tables
            if namespace == index.namespace
        ]
        index.evacuate(victim)
        ring.leave(victim)
        ring.stabilize_all(rounds=2)
        index.mapping.invalidate_placement_cache()
        for logical in victim_logicals:
            owner = index.mapping.physical_owner(logical)
            shard = index.shard_at(owner)
            assert (index.namespace, logical) in shard.tables

    def test_evacuate_unknown_rejected(self, stack):
        _, index = stack
        with pytest.raises(ValueError):
            index.evacuate(999_999)

    def test_abrupt_leave_loses_data_evacuate_prevents_it(self):
        # Contrast test: the whole point of evacuate.
        ring = ChordNetwork.build(bits=16, num_nodes=8, seed=72)
        index = HypercubeIndex(Hypercube(6), ring)
        index.bulk_load(ITEMS)
        total = index.total_indexed()
        victim = max(
            ring.addresses(),
            key=lambda a: index.shard_at(a).load(namespace=index.namespace),
        )
        lost = index.shard_at(victim).load(namespace=index.namespace)
        assert lost > 0
        ring.leave(victim)  # abrupt: data gone with the node
        assert index.total_indexed() == total - lost


class TestDurableChurn:
    """Churn over the WAL backend survives a restart (satellite pin)."""

    def test_evacuation_durable_across_restart(self, tmp_path):
        ring, index, stores = _build(71, tmp_path)
        index.bulk_load(ITEMS)
        victim = max(
            ring.addresses(),
            key=lambda a: index.shard_at(a).load(namespace=index.namespace),
        )
        assert index.shard_at(victim).load(namespace=index.namespace) > 0
        before = index.total_indexed()
        index.evacuate(victim)
        ring.leave(victim)
        ring.stabilize_all(rounds=2)
        index.mapping.invalidate_placement_cache()
        for store in stores.values():
            store.close()

        # "Restart": rebuild the same deployment over the same
        # directories and re-apply the membership fact.
        ring2, index2, stores2 = _build(71, tmp_path)
        # The drop was durable: the victim's shard does not resurrect
        # the tables it handed off.
        assert index2.shard_at(victim).load(namespace=index2.namespace) == 0
        ring2.leave(victim)
        ring2.stabilize_all(rounds=2)
        index2.mapping.invalidate_placement_cache()
        assert index2.total_indexed() == before
        result = SuperSetSearch(index2).run({"base"})
        assert len(result.objects) == len(ITEMS)
        for store in stores2.values():
            store.close()

    def test_rebalance_durable_across_restart(self, tmp_path):
        ring, index, stores = _build(71, tmp_path)
        index.bulk_load(ITEMS)
        before = index.total_indexed()
        bootstrap = ring.any_address()
        joined = []
        for address in range(0, 65536, 4096):
            if address not in ring.nodes:
                ring.join(address, bootstrap)
                joined.append(address)
        ring.stabilize_all(rounds=2)
        # Joined nodes get durable shards too, then data moves to them.
        for address in joined:
            store = FileStore(tmp_path / f"node-{address}")
            stores[address] = store
            shard = index.shard_at(address)
            shard.store = store
            store.bind(tables=lambda shard=shard: shard.tables)
        assert index.rebalance() > 0
        for store in stores.values():
            store.close()

        ring2, index2, stores2 = _build(71, tmp_path)
        bootstrap2 = ring2.any_address()
        for address in joined:
            ring2.join(address, bootstrap2)
            stores2[address] = FileStore(tmp_path / f"node-{address}")
        ring2.stabilize_all(rounds=2)
        index2.mapping.invalidate_placement_cache()
        # Freshly-joined nodes recover their shards from their stores.
        for address in joined:
            shard = index2.shard_at(address)
            recovered = stores2[address].recover()
            for key, table in recovered.tables.items():
                shard.tables[key] = {
                    keywords: set(objects) for keywords, objects in table.items()
                }
        assert index2.total_indexed() == before
        assert index2.rebalance() == 0  # placement already correct
        for address in ring2.addresses():
            shard = index2.shard_at(address)
            for namespace, logical in shard.tables:
                if namespace == index2.namespace:
                    assert index2.mapping.physical_owner(logical) == address
        for store in stores2.values():
            store.close()
