"""The unified Client API: one spelling over every deployment shape."""

import pytest

from repro.client import Client, DaemonFleetClient, ServiceClient, connect
from repro.core.config import SearchOptions, ServiceConfig
from repro.core.service import KeywordSearchService
from repro.net.cluster import LocalCluster

CONFIG = ServiceConfig(dimension=4, num_dht_nodes=8, seed=5)

CORPUS = [
    ("chord.pdf", {"dht", "p2p", "ring"}),
    ("pastry.pdf", {"dht", "p2p", "prefix"}),
    ("hypercube.pdf", {"search", "keyword", "dht"}),
]


def _publish_all(client) -> None:
    for object_id, keywords in CORPUS:
        client.insert(object_id, keywords)


class TestServiceClient:
    def test_simulated_service_round_trip(self):
        service = KeywordSearchService.create(CONFIG)
        client = service.client()
        assert isinstance(client, ServiceClient)
        assert isinstance(client, Client)  # runtime-checkable protocol
        _publish_all(client)
        result = client.search({"dht", "p2p"})
        assert set(result.results()) == {"chord.pdf", "pastry.pdf"}

    def test_delete_withdraws_the_replica(self):
        service = KeywordSearchService.create(CONFIG)
        client = service.client()
        published = client.insert("gone.pdf", {"dht", "tmp"})
        client.delete("gone.pdf", holder=published.holder)
        assert client.search({"dht", "tmp"}).results() == ()

    def test_close_is_a_no_op_for_borrowed_services(self):
        service = KeywordSearchService.create(CONFIG)
        with service.client() as client:
            client.insert("keep.pdf", {"dht"})
        # Borrowing: the service outlives the client.
        assert service.search({"dht"}).results() == ("keep.pdf",)

    def test_options_pass_through_unchanged(self):
        service = KeywordSearchService.create(CONFIG)
        client = service.client()
        _publish_all(client)
        result = client.search({"dht"}, SearchOptions(threshold=1))
        assert len(result.results()) == 1

    def test_deprecated_spellings_warn_but_work(self):
        service = KeywordSearchService.create(CONFIG)
        client = service.client()
        with pytest.warns(DeprecationWarning, match="insert"):
            client.publish("old.pdf", {"dht", "legacy"})
        with pytest.warns(DeprecationWarning, match="search"):
            result = client.superset_search({"legacy"})
        assert result.results() == ("old.pdf",)


class TestConnect:
    def test_connect_service(self):
        service = KeywordSearchService.create(CONFIG)
        assert isinstance(connect(service), ServiceClient)

    def test_connect_config_requires_peers(self):
        with pytest.raises(TypeError, match="peers"):
            connect(CONFIG)

    def test_connect_rejects_unknown_shapes(self):
        with pytest.raises(TypeError, match="cannot build a Client"):
            connect(object())

    def test_connect_cluster_borrows_its_service(self):
        with LocalCluster(CONFIG) as cluster:
            client = connect(cluster)
            assert isinstance(client, ServiceClient)
            assert client.service is cluster.service


class TestClusterAndFleetParity:
    def test_same_answers_over_simulator_cluster_and_fleet(self):
        """One corpus, three media — identical result sets."""
        sim_client = KeywordSearchService.create(CONFIG).client()
        _publish_all(sim_client)
        expected = set(sim_client.search({"dht", "p2p"}).results())
        assert expected  # the query must be non-trivial

        with LocalCluster(CONFIG) as cluster:
            borrowed = cluster.client()
            _publish_all(borrowed)
            assert set(borrowed.search({"dht", "p2p"}).results()) == expected

            # The fleet shape: own socket pool, every RPC over TCP.
            with connect(CONFIG, peers=cluster.endpoints) as fleet:
                assert isinstance(fleet, DaemonFleetClient)
                assert set(fleet.search({"dht", "p2p"}).results()) == expected
                fleet.insert("late.pdf", {"dht", "p2p", "late"})
            # The fleet's insert landed on the shared cluster.
            assert "late.pdf" in borrowed.search({"dht", "p2p"}).results()

    def test_fleet_client_close_drops_only_its_sockets(self):
        with LocalCluster(CONFIG) as cluster:
            fleet = connect(CONFIG, peers=cluster.endpoints)
            fleet.insert("probe.pdf", {"dht", "probe"})
            fleet.close()
            # The cluster is untouched by the client's close.
            assert cluster.client().search({"probe"}).results() == ("probe.pdf",)


class TestQueryValidation:
    """Malformed queries die at the client boundary, before any RPC."""

    def _client(self):
        return KeywordSearchService.create(CONFIG).client()

    def test_empty_query_is_rejected(self):
        from repro.client import InvalidQueryError

        client = self._client()
        with pytest.raises(InvalidQueryError):
            client.search([])
        with pytest.raises(InvalidQueryError):
            client.search(set())

    def test_empty_or_nonstring_keywords_are_rejected(self):
        from repro.client import InvalidQueryError

        client = self._client()
        with pytest.raises(InvalidQueryError):
            client.search([""])
        with pytest.raises(InvalidQueryError):
            client.search(["   "])
        with pytest.raises(InvalidQueryError):
            client.search([3])
        with pytest.raises(InvalidQueryError):
            client.search(["ok", None])

    def test_invalid_query_error_is_a_value_error(self):
        from repro.client import InvalidQueryError

        assert issubclass(InvalidQueryError, ValueError)

    def test_malformed_prefix_queries_are_rejected(self):
        from repro.client import InvalidQueryError

        config = ServiceConfig(dimension=4, num_dht_nodes=8, seed=5, prefix_directory=True)
        client = KeywordSearchService.create(config).client()
        prefix = SearchOptions(prefix=True)
        with pytest.raises(InvalidQueryError):
            client.search([], prefix)
        with pytest.raises(InvalidQueryError):
            client.search("", prefix)
        with pytest.raises(InvalidQueryError):
            client.search(["two", "words"], prefix)
        with pytest.raises(InvalidQueryError):
            client.search([42], prefix)

    def test_insert_validates_keywords_too(self):
        from repro.client import InvalidQueryError

        client = self._client()
        with pytest.raises(InvalidQueryError):
            client.insert("bad.pdf", [])
        with pytest.raises(InvalidQueryError):
            client.insert("bad.pdf", ["", "x"])

    def test_valid_queries_still_reach_results(self):
        client = self._client()
        _publish_all(client)
        assert set(client.search({"dht", "p2p"}).results()) == {"chord.pdf", "pastry.pdf"}

    def test_fleet_client_validates_before_any_rpc(self):
        from repro.client import InvalidQueryError

        with LocalCluster(CONFIG) as cluster:
            with connect(CONFIG, peers=cluster.endpoints) as fleet:
                with pytest.raises(InvalidQueryError):
                    fleet.search([])
                with pytest.raises(InvalidQueryError):
                    fleet.insert("bad.pdf", [""])
