"""End-to-end property tests: random libraries, random queries, every
path through the search machinery must agree with the oracle and with
each other."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cumulative import CumulativeSearchSession
from repro.core.index import HypercubeIndex
from repro.core.ranking import group_by_category, interleave_categories, rank_results
from repro.core.search import SuperSetSearch, TraversalOrder
from repro.dht.chord import ChordNetwork
from repro.hypercube.hypercube import Hypercube

VOCABULARY = ["red", "green", "blue", "round", "square", "large", "small"]

libraries = st.dictionaries(
    keys=st.integers(min_value=0, max_value=20).map(lambda i: f"obj-{i}"),
    values=st.sets(st.sampled_from(VOCABULARY), min_size=1, max_size=4).map(frozenset),
    min_size=1,
    max_size=12,
)
queries = st.sets(st.sampled_from(VOCABULARY), min_size=1, max_size=3).map(frozenset)


def build(library: dict, seed: int = 99) -> HypercubeIndex:
    ring = ChordNetwork.build(bits=16, num_nodes=10, seed=seed)
    index = HypercubeIndex(Hypercube(5), ring)
    index.bulk_load(library.items())
    return index


def oracle(library: dict, query: frozenset) -> set:
    return {oid for oid, kw in library.items() if query <= kw}


@settings(max_examples=40, deadline=None)
@given(libraries, queries)
def test_search_matches_oracle(library, query):
    index = build(library)
    result = SuperSetSearch(index).run(query)
    assert set(result.object_ids) == oracle(library, query)
    assert result.complete


@settings(max_examples=25, deadline=None)
@given(libraries, queries)
def test_orders_agree(library, query):
    index = build(library)
    searcher = SuperSetSearch(index)
    sets = {
        frozenset(searcher.run(query, order=order).object_ids)
        for order in TraversalOrder
    }
    assert len(sets) == 1


@settings(max_examples=25, deadline=None)
@given(libraries, queries, st.integers(min_value=1, max_value=6))
def test_threshold_is_prefix(library, query, threshold):
    index = build(library)
    searcher = SuperSetSearch(index)
    full = list(searcher.run(query).object_ids)
    capped = list(searcher.run(query, threshold).object_ids)
    assert capped == full[:threshold]


@settings(max_examples=25, deadline=None)
@given(libraries, queries, st.integers(min_value=1, max_value=4))
def test_cumulative_equals_one_shot(library, query, page_size):
    index = build(library)
    one_shot = list(SuperSetSearch(index).run(query).object_ids)
    session = CumulativeSearchSession(index, query)
    paged = []
    while not session.exhausted:
        paged.extend(
            found.object_id for found in session.next_batch(page_size).objects
        )
    assert paged == one_shot


@settings(max_examples=25, deadline=None)
@given(libraries, queries)
def test_pin_is_exact_subset_of_superset(library, query):
    index = build(library)
    pin = set(index.pin_search(query).object_ids)
    superset = set(SuperSetSearch(index).run(query).object_ids)
    assert pin <= superset
    assert pin == {oid for oid, kw in library.items() if kw == query}


@settings(max_examples=25, deadline=None)
@given(libraries, queries)
def test_ranking_is_permutation(library, query):
    index = build(library)
    results = list(SuperSetSearch(index).run(query).objects)
    ranked = rank_results(results, query)
    interleaved = interleave_categories(results, query)
    assert sorted(f.object_id for f in ranked) == sorted(f.object_id for f in results)
    assert sorted(f.object_id for f in interleaved) == sorted(
        f.object_id for f in results
    )
    groups = group_by_category(results, query)
    assert sum(len(g) for g in groups.values()) == len(results)


@settings(max_examples=20, deadline=None)
@given(libraries, queries)
def test_delete_everything_empties_search(library, query):
    index = build(library)
    ring = index.dolr
    holder = ring.any_address()
    # bulk_load skips reference registration; register + delete through
    # the protocol path to exercise remove end to end.
    for object_id, keywords in library.items():
        ring.insert(object_id, holder)
    for object_id, keywords in library.items():
        index.delete(object_id, keywords, holder)
    assert index.total_indexed() == 0
    assert SuperSetSearch(index).run(query).objects == ()


@settings(max_examples=25, deadline=None)
@given(libraries, queries)
def test_orders_agree_on_results_and_message_count(library, query):
    """TOP_DOWN, BOTTOM_UP, and PARALLEL visit the same subcube, so they
    must return the same objects for the same total message count —
    PARALLEL only compresses the rounds (Section 3.5)."""
    index = build(library)
    searcher = SuperSetSearch(index)
    results = {order: searcher.run(query, order=order) for order in TraversalOrder}
    top_down = results[TraversalOrder.TOP_DOWN]
    bottom_up = results[TraversalOrder.BOTTOM_UP]
    parallel = results[TraversalOrder.PARALLEL]
    for result in results.values():
        assert set(result.object_ids) == set(top_down.object_ids)
        assert result.complete
    assert parallel.messages == bottom_up.messages
    # TOP_DOWN alone pays the initial T_QUERY from the requester as a
    # network round trip (the variants enter at the root and scan its
    # table locally) — at most 2 messages, 0 when origin hosts the root.
    assert top_down.messages - parallel.messages in (0, 2)
    assert parallel.rounds <= top_down.rounds


@settings(max_examples=25, deadline=None)
@given(libraries, queries, st.integers(min_value=1, max_value=6))
def test_orders_agree_under_threshold_truncation(library, query, threshold):
    """Every order honours min(t, |O_K|): same result count, and every
    returned object is a valid superset match — even though a truncated
    PARALLEL level may internally overshoot before trimming."""
    index = build(library)
    searcher = SuperSetSearch(index)
    matches = oracle(library, query)
    expected = min(threshold, len(matches))
    for order in TraversalOrder:
        result = searcher.run(query, threshold, order=order)
        ids = list(result.object_ids)
        assert len(ids) == expected
        assert len(set(ids)) == expected
        assert set(ids) <= matches
