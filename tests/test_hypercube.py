"""Unit tests for the hypercube vector space."""

import pytest

from repro.hypercube.hypercube import Hypercube


class TestBasics:
    def test_counts(self):
        cube = Hypercube(4)
        assert cube.num_nodes == 16
        assert cube.num_edges == 32  # r * 2^(r-1)

    def test_zero_dimensional(self):
        cube = Hypercube(0)
        assert cube.num_nodes == 1
        assert cube.num_edges == 0
        assert list(cube.nodes()) == [0]

    def test_dimension_bounds(self):
        with pytest.raises(ValueError):
            Hypercube(-1)
        with pytest.raises(ValueError):
            Hypercube(25)

    def test_check_node(self):
        cube = Hypercube(3)
        with pytest.raises(ValueError):
            cube.check_node(8)
        assert cube.check_node(7) == 7


class TestNeighbors:
    def test_neighbor_single_dimension(self):
        cube = Hypercube(4)
        assert cube.neighbor(0b0100, 1) == 0b0110

    def test_neighbors_differ_in_one_bit(self):
        cube = Hypercube(5)
        node = 0b10101
        for neighbor in cube.neighbors(node):
            assert cube.hamming(node, neighbor) == 1

    def test_neighbor_count(self):
        cube = Hypercube(6)
        assert len(cube.neighbors(0)) == 6

    def test_neighborhood_symmetric(self):
        cube = Hypercube(4)
        for node in cube.nodes():
            for neighbor in cube.neighbors(node):
                assert node in cube.neighbors(neighbor)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            Hypercube(3).neighbor(0, 3)

    def test_edges_count_matches(self):
        cube = Hypercube(4)
        assert len(list(cube.edges())) == cube.num_edges

    def test_edges_are_normalized(self):
        for low, high in Hypercube(3).edges():
            assert low < high


class TestPaperVocabulary:
    def test_one_zero(self):
        cube = Hypercube(6)
        assert cube.one(0b010100) == (2, 4)
        assert cube.zero(0b010100) == (0, 1, 3, 5)

    def test_contains_node(self):
        cube = Hypercube(4)
        assert cube.contains_node(0b0110, 0b0100)
        assert not cube.contains_node(0b0100, 0b0110)

    def test_weight(self):
        cube = Hypercube(8)
        assert cube.weight(0b10110001) == 4

    def test_format_node(self):
        assert Hypercube(4).format_node(5) == "0101"


class TestSubcubeGeometry:
    def test_subcube_dimension(self):
        cube = Hypercube(4)
        assert cube.subcube_dimension(0b0100) == 3

    def test_subcube_size(self):
        cube = Hypercube(4)
        assert cube.subcube_size(0b0100) == 8
        assert cube.subcube_size(0) == 16
        assert cube.subcube_size(0b1111) == 1

    def test_nodes_of_weight(self):
        cube = Hypercube(5)
        for weight in range(6):
            nodes = list(cube.nodes_of_weight(weight))
            assert all(cube.weight(n) == weight for n in nodes)
            import math

            assert len(nodes) == math.comb(5, weight)

    def test_nodes_of_weight_ascending(self):
        nodes = list(Hypercube(6).nodes_of_weight(3))
        assert nodes == sorted(nodes)

    def test_nodes_of_weight_partition(self):
        cube = Hypercube(4)
        everything = [n for w in range(5) for n in cube.nodes_of_weight(w)]
        assert sorted(everything) == list(cube.nodes())

    def test_nodes_of_weight_invalid(self):
        with pytest.raises(ValueError):
            list(Hypercube(4).nodes_of_weight(5))
