"""Protocol-conformance tests: the wire behaviour against the paper's text.

These tests pin down the *message-level* behaviour of the T_QUERY
protocol and the index operations — kinds, directions, and ordering —
so a refactor cannot silently drift from Section 3.3's specification
while still returning correct results.
"""

import pytest

from repro.core.index import HypercubeIndex
from repro.core.search import SuperSetSearch, TraversalOrder
from repro.dht.chord import ChordNetwork
from repro.hypercube.hypercube import Hypercube
from repro.hypercube.sbt import SpanningBinomialTree


@pytest.fixture()
def stack():
    ring = ChordNetwork.build(bits=16, num_nodes=16, seed=301)
    index = HypercubeIndex(Hypercube(5), ring)
    holder = ring.any_address()
    index.insert("gen", {"q"}, holder)
    index.insert("mid", {"q", "a"}, holder)
    index.insert("deep", {"q", "a", "b", "c"}, holder)
    return ring, index


class TestTQueryMessageFlow:
    def test_one_scan_request_per_subcube_node(self, stack):
        ring, index = stack
        searcher = SuperSetSearch(index)
        with ring.network.trace() as trace:
            result = searcher.run({"q"})
        scans = [
            m for m in trace.messages if m.kind == "hindex.scan" and not m.is_reply
        ]
        # One T_QUERY per visited node; the root's scan may be free
        # (local) so allow visits or visits - 1.
        assert len(scans) in (len(result.visits), len(result.visits) - 1)

    def test_scan_targets_follow_bfs_tree_order(self, stack):
        ring, index = stack
        searcher = SuperSetSearch(index)
        result = searcher.run({"q"})
        tree = SpanningBinomialTree.induced(index.cube, result.root_logical)
        expected = [node for node, _ in tree.bfs()]
        assert [visit.logical for visit in result.visits] == expected

    def test_results_forwarded_directly_to_requester(self, stack):
        ring, index = stack
        origin = ring.addresses()[0]
        searcher = SuperSetSearch(index)
        with ring.network.trace() as trace:
            result = searcher.run({"q"}, origin=origin)
        forwards = [m for m in trace.messages if m.kind == "hindex.results"]
        # Every non-empty visit at a node other than the requester sends
        # its IDs directly to the requester.
        serving_remote = sum(
            1
            for visit in result.visits
            if visit.returned and visit.physical != origin
        )
        assert len(forwards) == serving_remote
        assert all(m.dst == origin for m in forwards)

    def test_control_traffic_flows_through_root(self, stack):
        ring, index = stack
        origin = ring.addresses()[0]
        searcher = SuperSetSearch(index)
        with ring.network.trace() as trace:
            result = searcher.run({"q"}, origin=origin)
        root = result.root_physical
        for message in trace.messages:
            if message.kind == "hindex.scan" and not message.is_reply:
                # T_QUERYs originate at the requester (the initial one)
                # or at the root (the queue-driven ones).
                assert message.src in (origin, root)

    def test_early_stop_sends_no_further_queries(self, stack):
        ring, index = stack
        searcher = SuperSetSearch(index)
        with ring.network.trace() as trace:
            capped = searcher.run({"q"}, threshold=1)
        scans = [
            m for m in trace.messages if m.kind == "hindex.scan" and not m.is_reply
        ]
        # The walk stops at the first node that returns the threshold;
        # no queries beyond the visits recorded.
        assert len(scans) <= len(capped.visits)
        full = searcher.run({"q"})
        assert len(capped.visits) < len(full.visits)


class TestOperationMessageKinds:
    def test_insert_kinds(self, stack):
        ring, index = stack
        holder = ring.any_address()
        with ring.network.trace() as trace:
            index.insert("fresh", {"q", "new"}, holder)
        kinds = {m.kind for m in trace.messages}
        assert "dolr.insert_ref" in kinds  # reference placed at L(σ) first
        assert "hindex.put" in kinds or index.mapper.node_for({"q", "new"}) is not None

    def test_reference_before_index(self, stack):
        ring, index = stack
        holder = ring.any_address()
        with ring.network.trace() as trace:
            index.insert("ordered", {"q", "ord"}, holder)
        kinds = [m.kind for m in trace.messages if not m.is_reply]
        if "hindex.put" in kinds:
            assert kinds.index("dolr.insert_ref") < kinds.index("hindex.put")

    def test_pin_is_one_request(self, stack):
        ring, index = stack
        with ring.network.trace() as trace:
            index.pin_search({"q", "a"})
        pins = [m for m in trace.messages if m.kind == "hindex.pin" and not m.is_reply]
        assert len(pins) <= 1

    def test_replies_mirror_requests(self, stack):
        ring, index = stack
        with ring.network.trace() as trace:
            SuperSetSearch(index).run({"q"})
        for kind in ("hindex.scan", "chord.route_step"):
            requests = sum(
                1 for m in trace.messages if m.kind == kind and not m.is_reply
            )
            replies = sum(1 for m in trace.messages if m.kind == kind and m.is_reply)
            assert requests == replies


class TestTraversalEquivalence:
    def test_all_orders_visit_same_node_set(self, stack):
        _, index = stack
        searcher = SuperSetSearch(index)
        visit_sets = {
            order: frozenset(v.logical for v in searcher.run({"q"}, order=order).visits)
            for order in TraversalOrder
        }
        assert len(set(visit_sets.values())) == 1

    def test_message_counts_match_across_orders(self, stack):
        ring, index = stack
        searcher = SuperSetSearch(index)
        counts = {}
        for order in TraversalOrder:
            with ring.network.trace() as trace:
                searcher.run({"q"}, order=order)
            counts[order] = sum(
                1
                for m in trace.messages
                if m.kind == "hindex.scan" and not m.is_reply
            )
        # Exhaustive search scans the same subcube whatever the order;
        # the counts may differ by one because only top-down delivers
        # the initial T_QUERY from the requester (a network message),
        # while the variants start at the root (a local scan).
        assert max(counts.values()) - min(counts.values()) <= 1
