"""Admission control: T_BUSY frames, shedding, and busy-aware retries."""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SearchOptions, ServiceConfig
from repro.core.service import KeywordSearchService
from repro.net.admission import AdmissionController, AdmissionPolicy
from repro.net.aio import AsyncioTransport
from repro.net.errors import NodeBusyError, PeerUnreachableError
from repro.net.qos import current_qos, qos_scope
from repro.net.transport import RpcCall
from repro.net.wire import Frame, FrameType, decode_frame, encode_frame
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import NetworkError, SimulatedNetwork
from repro.sim.resilience import (
    BreakerPolicy,
    BreakerState,
    ResilientChannel,
    RetryPolicy,
)


class TestBusyWire:
    def test_busy_frame_round_trips(self):
        frame = Frame(
            FrameType.BUSY, "hindex.scan", 7, 3, 41,
            {"queue_depth": 12, "retry_after": 8.0},
        )
        data = encode_frame(frame)
        decoded, consumed = decode_frame(data)
        assert decoded == frame
        assert consumed == len(data)

    def test_priority_rides_the_pr_key_and_round_trips(self):
        frame = Frame(FrameType.REQUEST, "k", 1, 2, 3, {"x": 1}, priority=2)
        data = encode_frame(frame)
        assert b'"pr"' in data
        decoded, _ = decode_frame(data)
        assert decoded.priority == 2

    def test_zero_priority_is_omitted_from_the_bytes(self):
        # Pre-priority traffic must encode identically.
        frame = Frame(FrameType.REQUEST, "k", 1, 2, 3, {"x": 1})
        assert b'"pr"' not in encode_frame(frame)
        decoded, _ = decode_frame(encode_frame(frame))
        assert decoded.priority == 0


class TestAdmissionController:
    def test_policy_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(priority_headroom=-1)
        with pytest.raises(ValueError):
            AdmissionPolicy(retry_after=-1.0)

    def test_bounds_inflight_and_counts_sheds(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(AdmissionPolicy(max_inflight=2), metrics)
        assert controller.try_admit(5)
        assert controller.try_admit(5)
        assert not controller.try_admit(5)
        controller.release(5)
        assert controller.try_admit(5)
        assert metrics.counter("net.shed_requests") == 1
        assert metrics.counter("net.admitted_requests") == 3

    def test_addresses_are_independent(self):
        controller = AdmissionController(AdmissionPolicy(max_inflight=1), MetricsRegistry())
        assert controller.try_admit(1)
        assert controller.try_admit(2)  # node 1 being full does not shed node 2
        assert not controller.try_admit(1)

    def test_priority_headroom_spares_prioritized_traffic(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(
            AdmissionPolicy(max_inflight=1, priority_headroom=1), metrics
        )
        assert controller.try_admit(5, priority=0)
        assert not controller.try_admit(5, priority=0)  # base slots full
        assert controller.try_admit(5, priority=1)  # headroom slot
        assert not controller.try_admit(5, priority=1)  # headroom full too
        assert metrics.counter("net.shed_low_priority") == 1

    def test_unbalanced_release_is_a_bug(self):
        controller = AdmissionController(AdmissionPolicy(), MetricsRegistry())
        with pytest.raises(RuntimeError):
            controller.release(5)


class TestTcpShedding:
    """T_BUSY over real sockets: fast reject, priority, accounting."""

    def _slow_pair(self, admission: AdmissionPolicy):
        """Server transport with a blockable handler + client transport."""
        release = threading.Event()
        server = AsyncioTransport(rpc_timeout=10.0, admission=admission)

        def handler(message):
            if message.payload.get("block"):
                release.wait(timeout=10)
            return "served"

        server.register(1, handler)
        client = AsyncioTransport(
            rpc_timeout=10.0, serve_addresses=frozenset(), peers=dict(server.endpoints)
        )
        client.register(2, lambda message: None)
        return server, client, release

    def _occupy_slot(self, server, client):
        """Park one request inside node 1's handler; return its thread."""
        blocker = threading.Thread(
            target=lambda: client.rpc(2, 1, "work", {"block": True}), daemon=True
        )
        blocker.start()
        for _ in range(500):
            if server.admission.depth(1) >= 1:
                break
            time.sleep(0.01)
        else:
            pytest.fail("blocker never occupied the admission slot")
        return blocker

    def _drain(self, server):
        for _ in range(500):
            if server.admission.depth(1) == 0:
                return
            time.sleep(0.01)
        pytest.fail("admission slot never drained")

    def test_overloaded_node_sheds_with_node_busy_error(self):
        server, client, release = self._slow_pair(AdmissionPolicy(max_inflight=1))
        try:
            blocker = self._occupy_slot(server, client)
            with pytest.raises(NodeBusyError) as caught:
                client.rpc(2, 1, "work", {})
            assert caught.value.queue_depth >= 1
            release.set()
            blocker.join(timeout=5)
            self._drain(server)
            # Slot released: the next request is served again.
            assert client.rpc(2, 1, "work", {}) == "served"
            assert server.metrics.counter("net.shed_requests") == 1
            assert server.metrics.counter("net.admitted_requests") == 2
            assert client.metrics.counter("net.busy_received") == 1
        finally:
            release.set()
            client.close()
            server.close()

    def test_shed_request_accounts_exactly_one_message(self):
        server, client, release = self._slow_pair(AdmissionPolicy(max_inflight=1))
        try:
            blocker = self._occupy_slot(server, client)
            before = client.metrics.counter("network.messages")
            with client.trace() as window:
                with pytest.raises(NodeBusyError):
                    client.rpc(2, 1, "work", {})
            # The busy refusal is not a reply: one message, same as the
            # simulator's inject_busy accounting.
            assert client.metrics.counter("network.messages") - before == 1
            assert window.message_count == 1
            release.set()
            blocker.join(timeout=5)
        finally:
            release.set()
            client.close()
            server.close()

    def test_priority_request_uses_headroom_while_bulk_is_shed(self):
        server, client, release = self._slow_pair(
            AdmissionPolicy(max_inflight=1, priority_headroom=1)
        )
        try:
            blocker = self._occupy_slot(server, client)
            with pytest.raises(NodeBusyError):
                client.rpc(2, 1, "bulk", {})
            with qos_scope(priority=1):
                assert client.rpc(2, 1, "urgent", {}) == "served"
            assert server.metrics.counter("net.shed_low_priority") == 1
            release.set()
            blocker.join(timeout=5)
        finally:
            release.set()
            client.close()
            server.close()

    def test_busy_reply_carries_retry_after_hint(self):
        server, client, release = self._slow_pair(
            AdmissionPolicy(max_inflight=1, retry_after=32.0)
        )
        try:
            blocker = self._occupy_slot(server, client)
            with pytest.raises(NodeBusyError) as caught:
                client.rpc(2, 1, "work", {})
            assert caught.value.retry_after == 32.0
            release.set()
            blocker.join(timeout=5)
        finally:
            release.set()
            client.close()
            server.close()

    def test_rpc_many_reports_busy_per_call(self):
        server, client, release = self._slow_pair(AdmissionPolicy(max_inflight=1))
        try:
            blocker = self._occupy_slot(server, client)
            outcomes = client.rpc_many(
                [RpcCall(2, 1, "work", {}), RpcCall(2, 1, "work", {})]
            )
            busy = [o for o in outcomes if isinstance(o.error, NodeBusyError)]
            assert len(busy) == 2  # slot is occupied: both shed
            release.set()
            blocker.join(timeout=5)
        finally:
            release.set()
            client.close()
            server.close()


class TestSimulatorBusy:
    def test_inject_busy_sheds_then_recovers(self):
        network = SimulatedNetwork()
        network.register(1, lambda message: "served")
        network.register(2, lambda message: None)
        network.inject_busy(1, count=2)
        for _ in range(2):
            with pytest.raises(NodeBusyError):
                network.rpc(2, 1, "work")
        assert network.rpc(2, 1, "work") == "served"
        assert network.metrics.counter("net.shed_requests") == 2

    def test_inject_busy_rejects_unknown_address_and_bad_count(self):
        network = SimulatedNetwork()
        network.register(1, lambda message: None)
        with pytest.raises(NetworkError):
            network.inject_busy(99)
        with pytest.raises(ValueError):
            network.inject_busy(1, count=0)

    @settings(deadline=None, max_examples=30)
    @given(
        shed=st.integers(min_value=0, max_value=5),
        served=st.integers(min_value=0, max_value=5),
    )
    def test_shed_request_is_never_double_counted(self, shed, served):
        """Parity property: a shed request costs exactly 1 message and a
        served RPC exactly 2, in any interleaving — so simulator and TCP
        accounting agree under shedding."""
        network = SimulatedNetwork()
        network.register(1, lambda message: "ok")
        network.register(2, lambda message: None)
        if shed:
            network.inject_busy(1, count=shed)
        with network.trace() as window:
            for _ in range(shed):
                with pytest.raises(NodeBusyError):
                    network.rpc(2, 1, "work")
            for _ in range(served):
                network.rpc(2, 1, "work")
        assert window.message_count == shed + served * 2
        assert window.request_count == shed + served
        assert network.metrics.counter("network.messages") == shed + served * 2

    def test_rpc_many_sheds_per_call_without_reply_accounting(self):
        network = SimulatedNetwork()
        network.register(1, lambda message: "ok")
        network.register(3, lambda message: "ok")
        network.register(2, lambda message: None)
        network.inject_busy(1, count=1)
        with network.trace() as window:
            outcomes = network.rpc_many([RpcCall(2, 1, "work"), RpcCall(2, 3, "work")])
        assert isinstance(outcomes[0].error, NodeBusyError)
        assert outcomes[1].value == "ok"
        assert window.message_count == 3  # shed: 1, served: 2


class TestBusyAwareRetry:
    def _pair(self, **channel_kwargs):
        network = SimulatedNetwork()
        network.register(1, lambda message: "served")
        network.register(2, lambda message: None)
        return network, ResilientChannel(network, **channel_kwargs)

    def test_busy_is_retried_and_counted_apart_from_failures(self):
        network, channel = self._pair(
            policy=RetryPolicy(max_attempts=3, base_delay=2.0, jitter=0.0)
        )
        network.inject_busy(1, count=2)
        assert channel.rpc(2, 1, "work") == "served"
        assert network.metrics.counter("rpc.busy") == 2
        assert network.metrics.counter("rpc.failures") == 0
        assert network.metrics.counter("rpc.retries") == 2

    def test_busy_never_trips_the_breaker(self):
        network, channel = self._pair(
            policy=RetryPolicy(max_attempts=2, base_delay=1.0, jitter=0.0),
            breaker=BreakerPolicy(failure_threshold=1),
        )
        network.inject_busy(1, count=5)
        with pytest.raises(NodeBusyError):
            channel.rpc(2, 1, "work")
        assert channel.breaker_for(1).state is BreakerState.CLOSED
        assert network.metrics.counter("breaker.open") == 0

    def test_retry_after_hint_raises_the_backoff_floor(self):
        network = SimulatedNetwork()
        network.register(2, lambda message: None)
        attempts: list[int] = []

        def saturated_then_fine(message):
            attempts.append(1)
            if len(attempts) == 1:
                raise NodeBusyError(1, queue_depth=3, retry_after=50.0)
            return "served"

        network.register(1, saturated_then_fine)
        channel = ResilientChannel(
            network, RetryPolicy(max_attempts=2, base_delay=1.0, jitter=0.0)
        )
        started = network.now()
        assert channel.rpc(2, 1, "work") == "served"
        # The policy would have retried after 1.0; the node's hint wins.
        assert network.now() - started >= 50.0

    def test_rpc_many_busy_outcomes_and_counters(self):
        network, channel = self._pair(
            policy=RetryPolicy(max_attempts=2, base_delay=1.0, jitter=0.0)
        )
        network.register(3, lambda message: "ok")
        network.inject_busy(1, count=2)  # both attempts shed -> exhausted
        outcomes = channel.rpc_many([RpcCall(2, 1, "a"), RpcCall(2, 3, "b")])
        assert isinstance(outcomes[0].error, NodeBusyError)
        assert outcomes[1].value == "ok"
        assert network.metrics.counter("rpc.busy") == 2
        assert network.metrics.counter("rpc.failures") == 0


class TestSearchOptionsQos:
    CONFIG = ServiceConfig(dimension=4, num_dht_nodes=8, seed=7)

    def test_deadline_and_priority_fields_validate(self):
        options = SearchOptions(deadline=500.0, priority=2)
        assert options.deadline == 500.0 and options.priority == 2
        with pytest.raises(ValueError):
            SearchOptions(deadline=0.0)
        with pytest.raises(ValueError):
            SearchOptions(priority=-1)

    def test_positional_compat_is_preserved(self):
        # The original five fields keep their positions; the QoS fields
        # append after them.
        options = SearchOptions(3, 5, SearchOptions().order, True, False)
        assert options.threshold == 3 and options.origin == 5
        assert options.use_cache is True and options.trace is False
        assert options.deadline is None and options.priority == 0

    def test_search_establishes_the_qos_scope(self):
        service = KeywordSearchService.create(self.CONFIG)
        service.publish("a.pdf", {"dht", "p2p"})
        seen = {}
        searcher_run = service.searcher.run

        def spying_run(*args, **kwargs):
            seen["qos"] = current_qos()
            return searcher_run(*args, **kwargs)

        service.searcher.run = spying_run
        service.search({"dht"}, SearchOptions(deadline=800.0, priority=3))
        assert seen["qos"].priority == 3
        assert seen["qos"].deadline_at is not None
        # Default options: no scope established, ambient QoS is neutral.
        service.search({"dht"})
        assert seen["qos"].priority == 0 and seen["qos"].deadline_at is None

    def test_qos_deadline_bounds_channel_retries(self):
        network = SimulatedNetwork()
        network.register(1, lambda message: "x")
        network.register(2, lambda message: None)
        network.fail(1)
        channel = ResilientChannel(
            network, RetryPolicy(max_attempts=10, base_delay=8.0, jitter=0.0)
        )
        started = network.now()
        with qos_scope(deadline_at=network.now() + 10.0):
            with pytest.raises(PeerUnreachableError):
                channel.rpc(2, 1, "work")
        # The ambient deadline stopped the 10-attempt policy early.
        assert network.now() - started <= 10.0
        assert network.metrics.counter("rpc.deadline_exceeded") == 1
        assert network.metrics.counter("rpc.attempts") < 10


class TestShedSearchCachePoison:
    """A degraded-but-shed search must not poison the root result cache."""

    CONFIG = ServiceConfig(dimension=4, num_dht_nodes=8, seed=11, cache_capacity=16)

    def test_shed_visits_skip_cache_put(self):
        config = self.CONFIG.with_resilience(
            RetryPolicy(max_attempts=2, base_delay=1.0, jitter=0.0)
        )
        service = KeywordSearchService.create(config)
        for index, extra in enumerate(["p2p", "dht", "index", "chord", "zipf"]):
            service.publish(f"obj-{index}.pdf", {"shared", extra})
        # Discover the walk without touching the cache.
        probe = service.superset_search({"shared"}, options=SearchOptions(use_cache=False))
        baseline = set(probe.results())
        assert baseline == {f"obj-{i}.pdf" for i in range(5)}
        victims = {
            visit.physical
            for visit in probe.visits
            if visit.returned and visit.physical != probe.root_physical
        }
        assert victims, "walk must visit a non-root node that holds objects"
        network = service.network
        for victim in victims:
            network.inject_busy(victim, count=1000)
        degraded = service.superset_search({"shared"})  # cache on by default
        assert degraded.degraded
        assert set(degraded.results()) < baseline  # shed nodes' objects missing
        # Heal the cluster; the incomplete result set must not have been
        # cached at the root, so the next search sees everything again.
        for victim in victims:
            network._busy_budget[victim] = 0
        healed = service.superset_search({"shared"})
        assert set(healed.results()) == baseline
        assert not healed.degraded
