"""Tests for result ranking and query expansion."""

import pytest

from repro.core.expansion import QueryExpander
from repro.core.index import HypercubeIndex
from repro.core.ranking import (
    RankOrder,
    group_by_category,
    interleave_categories,
    rank_results,
)
from repro.core.search import FoundObject, SuperSetSearch
from repro.dht.chord import ChordNetwork
from repro.hypercube.hypercube import Hypercube

QUERY = frozenset({"mp3"})
RESULTS = [
    FoundObject("exact", frozenset({"mp3"})),
    FoundObject("one-a", frozenset({"mp3", "jazz"})),
    FoundObject("one-b", frozenset({"mp3", "rock"})),
    FoundObject("two", frozenset({"mp3", "jazz", "piano"})),
    FoundObject("one-a2", frozenset({"mp3", "jazz"})),
]


class TestRankResults:
    def test_general_first(self):
        ranked = rank_results(RESULTS, QUERY)
        specificity = [found.specificity(QUERY) for found in ranked]
        assert specificity == sorted(specificity)
        assert ranked[0].object_id == "exact"

    def test_specific_first(self):
        ranked = rank_results(RESULTS, QUERY, RankOrder.SPECIFIC_FIRST)
        assert ranked[0].object_id == "two"

    def test_stable_within_class(self):
        ranked = rank_results(RESULTS, QUERY)
        ones = [f.object_id for f in ranked if f.specificity(QUERY) == 1]
        assert ones == ["one-a", "one-b", "one-a2"]  # arrival order preserved

    def test_empty(self):
        assert rank_results([], QUERY) == []


class TestGrouping:
    def test_groups_by_extra_keywords(self):
        groups = group_by_category(RESULTS, QUERY)
        assert [f.object_id for f in groups[frozenset()]] == ["exact"]
        assert [f.object_id for f in groups[frozenset({"jazz"})]] == ["one-a", "one-a2"]
        assert [f.object_id for f in groups[frozenset({"jazz", "piano"})]] == ["two"]

    def test_category_order_small_first(self):
        keys = list(group_by_category(RESULTS, QUERY))
        sizes = [len(key) for key in keys]
        assert sizes == sorted(sizes)

    def test_interleave_shows_variety(self):
        page = interleave_categories(RESULTS, QUERY, limit=4)
        ids = [found.object_id for found in page]
        assert ids == ["exact", "one-a", "one-b", "two"]

    def test_interleave_second_pass(self):
        everything = interleave_categories(RESULTS, QUERY)
        assert len(everything) == len(RESULTS)
        assert everything[-1].object_id == "one-a2"

    def test_interleave_limit_zero(self):
        assert interleave_categories(RESULTS, QUERY, limit=0) == []
        with pytest.raises(ValueError):
            interleave_categories(RESULTS, QUERY, limit=-1)


class TestQueryExpander:
    @pytest.fixture()
    def index(self):
        ring = ChordNetwork.build(bits=16, num_nodes=16, seed=55)
        index = HypercubeIndex(Hypercube(8), ring)
        library = {
            f"jazz-{i}": frozenset({"mp3", "jazz"}) for i in range(6)
        }
        library.update({f"rock-{i}": frozenset({"mp3", "rock"}) for i in range(2)})
        library["solo"] = frozenset({"mp3"})
        index.bulk_load(library.items())
        return index

    def test_expansion_adds_supported_keyword(self, index):
        expander = QueryExpander(index, sample_visits=64)
        decision = expander.expand({"mp3"})
        assert decision.changed
        assert decision.added <= {"jazz", "rock"}
        # jazz has 3x the support of rock.
        assert "jazz" in decision.expanded

    def test_preferences_steer_choice(self, index):
        expander = QueryExpander(index, sample_visits=64)
        decision = expander.expand({"mp3"}, preferences={"rock": 10.0})
        assert decision.added == {"rock"}

    def test_expanded_query_shrinks_search_space(self, index):
        expander = QueryExpander(index, sample_visits=64)
        decision = expander.expand({"mp3"})
        before = index.cube.subcube_size(index.mapper.node_for(decision.original))
        after = index.cube.subcube_size(index.mapper.node_for(decision.expanded))
        assert after < before

    def test_expanded_query_still_returns_matches(self, index):
        expander = QueryExpander(index, sample_visits=64)
        decision = expander.expand({"mp3"})
        result = SuperSetSearch(index).run(decision.expanded)
        assert len(result.objects) > 0
        for found in result.objects:
            assert decision.original <= found.keywords

    def test_max_added_zero_is_identity(self, index):
        decision = QueryExpander(index).expand({"mp3"}, max_added=0)
        assert not decision.changed
        assert decision.sample_visits == 0

    def test_no_candidates_leaves_query_unchanged(self, index):
        decision = QueryExpander(index, sample_visits=32).expand({"unknown-term"})
        assert not decision.changed

    def test_validation(self, index):
        with pytest.raises(ValueError):
            QueryExpander(index, sample_visits=0)
        with pytest.raises(ValueError):
            QueryExpander(index).expand({"mp3"}, max_added=-1)
