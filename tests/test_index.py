"""Unit tests for the hypercube index (shards, Insert/Delete/Pin)."""


from repro.core.index import HypercubeIndex, IndexShard
from repro.dht.chord import ChordNetwork
from repro.hypercube.hypercube import Hypercube

from tests.conftest import CATALOGUE


class TestIndexShardLocal:
    def test_put_and_pin(self):
        shard = IndexShard()
        key = ("main", 5)
        shard.put(key, frozenset({"a", "b"}), "obj-1")
        shard.put(key, frozenset({"a", "b"}), "obj-2")
        assert shard.pin(key, frozenset({"a", "b"})) == ("obj-1", "obj-2")

    def test_pin_misses_different_set(self):
        shard = IndexShard()
        shard.put(("main", 5), frozenset({"a", "b"}), "obj-1")
        assert shard.pin(("main", 5), frozenset({"a"})) == ()

    def test_remove_last_object_drops_entry(self):
        shard = IndexShard()
        key = ("main", 3)
        shard.put(key, frozenset({"x"}), "obj")
        assert shard.remove(key, frozenset({"x"}), "obj")
        assert shard.load(key) == 0
        assert shard.tables == {}

    def test_remove_missing_returns_false(self):
        shard = IndexShard()
        assert not shard.remove(("main", 1), frozenset({"x"}), "obj")

    def test_namespaces_isolated(self):
        shard = IndexShard()
        shard.put(("a", 5), frozenset({"kw"}), "obj-a")
        shard.put(("b", 5), frozenset({"kw"}), "obj-b")
        assert shard.pin(("a", 5), frozenset({"kw"})) == ("obj-a",)
        assert shard.pin(("b", 5), frozenset({"kw"})) == ("obj-b",)
        assert shard.load(namespace="a") == 1

    def test_logical_nodes_isolated(self):
        shard = IndexShard()
        shard.put(("main", 5), frozenset({"kw"}), "obj-5")
        shard.put(("main", 9), frozenset({"kw"}), "obj-9")
        matches, _ = shard.scan(("main", 5), frozenset({"kw"}), None)
        assert [ids for _, ids in matches] == [("obj-5",)]


class TestShardScan:
    def make_shard(self):
        shard = IndexShard()
        key = ("main", 1)
        shard.put(key, frozenset({"a"}), "general")
        shard.put(key, frozenset({"a", "b"}), "mid-1")
        shard.put(key, frozenset({"a", "c"}), "mid-2")
        shard.put(key, frozenset({"a", "b", "c"}), "specific")
        shard.put(key, frozenset({"z"}), "unrelated")
        return shard, key

    def test_scan_matches_supersets_only(self):
        shard, key = self.make_shard()
        matches, truncated = shard.scan(key, frozenset({"a"}), None)
        found = [ids[0] for _, ids in matches]
        assert found == ["general", "mid-1", "mid-2", "specific"]
        assert not truncated

    def test_scan_orders_small_sets_first(self):
        shard, key = self.make_shard()
        matches, _ = shard.scan(key, frozenset({"a"}), None)
        sizes = [len(keywords) for keywords, _ in matches]
        assert sizes == sorted(sizes)

    def test_scan_limit_truncates(self):
        shard, key = self.make_shard()
        matches, truncated = shard.scan(key, frozenset({"a"}), 2)
        total = sum(len(ids) for _, ids in matches)
        assert total == 2
        assert truncated

    def test_scan_limit_exact_boundary(self):
        shard, key = self.make_shard()
        matches, truncated = shard.scan(key, frozenset({"a"}), 4)
        assert sum(len(ids) for _, ids in matches) == 4
        assert not truncated

    def test_scan_empty_node(self):
        shard = IndexShard()
        assert shard.scan(("main", 42), frozenset({"a"}), None) == ([], False)

    def test_scan_order_cache_invalidated_on_put(self):
        shard, key = self.make_shard()
        shard.scan(key, frozenset({"a"}), None)  # populate order cache
        shard.put(key, frozenset({"a", "d"}), "late")
        matches, _ = shard.scan(key, frozenset({"a"}), None)
        assert any("late" in ids for _, ids in matches)

    def test_scan_order_cache_invalidated_on_remove(self):
        shard, key = self.make_shard()
        shard.scan(key, frozenset({"a"}), None)
        shard.remove(key, frozenset({"a"}), "general")
        matches, _ = shard.scan(key, frozenset({"a"}), None)
        assert all("general" not in ids for _, ids in matches)


class TestNetworkedIndex:
    def test_insert_places_entry_at_responsible_node(self, loaded_index):
        index = loaded_index
        for object_id, keywords in CATALOGUE.items():
            logical = index.mapper.node_for(keywords)
            shard = index.shard_for_logical(logical)
            assert object_id in shard.pin(index.table_key(logical), keywords)

    def test_pin_search_round_trip(self, loaded_index):
        result = loaded_index.pin_search({"mp3", "jazz", "saxophone"})
        assert result.object_ids == ("take-five",)

    def test_pin_search_empty(self, loaded_index):
        assert loaded_index.pin_search({"nothing-here"}).object_ids == ()

    def test_second_replica_does_not_reindex(self, loaded_index, chord_ring):
        other = chord_ring.addresses()[1]
        created = loaded_index.insert("take-five", CATALOGUE["take-five"], other)
        assert created is False
        logical = loaded_index.mapper.node_for(CATALOGUE["take-five"])
        shard = loaded_index.shard_for_logical(logical)
        pins = shard.pin(loaded_index.table_key(logical), CATALOGUE["take-five"])
        assert pins.count("take-five") == 1

    def test_delete_removes_with_last_copy(self, loaded_index, chord_ring):
        holder = chord_ring.any_address()
        removed = loaded_index.delete("moonlight", CATALOGUE["moonlight"], holder)
        assert removed is True
        assert loaded_index.pin_search(CATALOGUE["moonlight"]).object_ids == ()

    def test_delete_keeps_entry_while_replicas_remain(self, loaded_index, chord_ring):
        a, b = chord_ring.addresses()[:2]
        loaded_index.insert("so-what", CATALOGUE["so-what"], b)
        removed = loaded_index.delete("so-what", CATALOGUE["so-what"], a)
        assert removed is False
        assert loaded_index.pin_search(CATALOGUE["so-what"]).object_ids == ("so-what",)

    def test_load_accounting(self, loaded_index):
        by_logical = loaded_index.load_by_logical_node()
        by_physical = loaded_index.load_by_physical_node()
        assert sum(by_logical.values()) == len(CATALOGUE)
        assert sum(by_physical.values()) == len(CATALOGUE)
        assert loaded_index.total_indexed() == len(CATALOGUE)

    def test_bulk_load_matches_protocol_placement(self, chord_ring):
        protocol_index = HypercubeIndex(Hypercube(6), chord_ring)
        holder = chord_ring.any_address()
        for object_id, keywords in CATALOGUE.items():
            protocol_index.insert(object_id, keywords, holder)
        bulk_ring = ChordNetwork.build(bits=16, num_nodes=24, seed=5)
        bulk_index = HypercubeIndex(Hypercube(6), bulk_ring)
        bulk_index.bulk_load(CATALOGUE.items())
        assert bulk_index.load_by_logical_node() == protocol_index.load_by_logical_node()

    def test_reset_caches_changes_capacity(self, loaded_index):
        loaded_index.reset_caches(cache_capacity=7)
        shard = loaded_index.shard_at(loaded_index.dolr.any_address())
        assert shard.cache_capacity == 7
        assert shard.cache.capacity == 7


class TestMapping:
    def test_placement_is_deterministic(self, loaded_index):
        placement = loaded_index.mapping.placement()
        assert placement == loaded_index.mapping.placement()
        assert set(placement) == set(loaded_index.cube.nodes())

    def test_owners_are_ring_members(self, loaded_index, chord_ring):
        for owner in loaded_index.mapping.placement().values():
            assert owner in chord_ring.nodes

    def test_placement_cache_consistent(self, loaded_index):
        before = loaded_index.mapping.placement()
        loaded_index.mapping.enable_placement_cache()
        assert all(
            loaded_index.mapping.physical_owner(n) == before[n]
            for n in loaded_index.cube.nodes()
        )

    def test_placement_cache_invalidation(self, loaded_index, chord_ring):
        mapping = loaded_index.mapping
        mapping.enable_placement_cache()
        stale = {n: mapping.physical_owner(n) for n in loaded_index.cube.nodes()}
        victim = next(iter(set(stale.values())))
        chord_ring.leave(victim)
        mapping.invalidate_placement_cache()
        fresh = {n: mapping.physical_owner(n) for n in loaded_index.cube.nodes()}
        assert victim not in fresh.values()

    def test_route_to_reaches_owner(self, loaded_index):
        logical = 5
        route = loaded_index.mapping.route_to(logical)
        assert route.owner == loaded_index.mapping.physical_owner(logical)

    def test_logical_nodes_of_inverts_placement(self, loaded_index):
        mapping = loaded_index.mapping
        placement = mapping.placement()
        some_physical = placement[0]
        inverse = mapping.logical_nodes_of(some_physical)
        assert all(placement[logical] == some_physical for logical in inverse)
        assert 0 in inverse

    def test_route_to_shares_placement_cache(self, loaded_index):
        mapping = loaded_index.mapping
        messages = loaded_index.dolr.network.metrics
        mapping.enable_placement_cache()
        first = mapping.route_to(5)
        # The paid lookup populated the cache; the repeat is free.
        before = messages.counter("network.messages")
        second = mapping.route_to(5)
        assert second.owner == first.owner == mapping.physical_owner(5)
        assert second.hops == 0
        assert messages.counter("network.messages") == before
        # physical_owner's population serves route_to too.
        owner7 = mapping.physical_owner(7)
        assert mapping.route_to(7).hops == 0
        assert mapping.route_to(7).owner == owner7

    @staticmethod
    def _remote_logical(index) -> int:
        """A logical node whose lookup pays at least one routing hop
        (the origin's first step is local and free), so an uncached
        route must send messages."""
        origin = index.dolr.any_address()
        return next(
            logical
            for logical in index.cube.nodes()
            if index.dolr.lookup(index.mapping.dht_key(logical), origin=origin).hops > 0
        )

    def test_route_to_refresh_bypasses_cache(self, loaded_index):
        mapping = loaded_index.mapping
        logical = self._remote_logical(loaded_index)
        mapping.enable_placement_cache()
        mapping.route_to(logical)
        messages = loaded_index.dolr.network.metrics
        before = messages.counter("network.messages")
        refreshed = mapping.route_to(logical, refresh=True)
        assert refreshed.owner == mapping.physical_owner(logical)
        assert messages.counter("network.messages") > before

    def test_route_to_invalidation_restores_lookups(self, loaded_index):
        mapping = loaded_index.mapping
        logical = self._remote_logical(loaded_index)
        mapping.enable_placement_cache()
        mapping.route_to(logical)
        mapping.invalidate_placement_cache()
        messages = loaded_index.dolr.network.metrics
        before = messages.counter("network.messages")
        mapping.route_to(logical)
        assert messages.counter("network.messages") > before

    def test_logical_nodes_of_memoized(self, loaded_index):
        mapping = loaded_index.mapping
        uncached = {p: mapping.logical_nodes_of(p) for p in set(mapping.placement().values())}
        mapping.enable_placement_cache()
        assert all(
            mapping.logical_nodes_of(p) == nodes for p, nodes in uncached.items()
        )
        assert mapping._inverse_cache is not None
        # Non-owners answer empty, and invalidation drops the memo.
        mapping.invalidate_placement_cache()
        assert mapping._inverse_cache is None
        assert {p: mapping.logical_nodes_of(p) for p in uncached} == uncached
