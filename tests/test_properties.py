"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.balls import expected_one_count, one_count_distribution
from repro.core.cache import FifoQueryCache, LruQueryCache
from repro.core.keywords import KeywordSetMapper
from repro.hypercube.hypercube import Hypercube
from repro.hypercube.sbt import SpanningBinomialTree
from repro.hypercube.subcube import SubHypercube
from repro.util import bitops
from repro.util.zipf import ZipfDistribution

dimensions = st.integers(min_value=1, max_value=10)


@st.composite
def cube_and_node(draw):
    r = draw(dimensions)
    node = draw(st.integers(min_value=0, max_value=(1 << r) - 1))
    return Hypercube(r), node


@st.composite
def cube_and_two_nodes(draw):
    r = draw(dimensions)
    u = draw(st.integers(min_value=0, max_value=(1 << r) - 1))
    v = draw(st.integers(min_value=0, max_value=(1 << r) - 1))
    return Hypercube(r), u, v


class TestBitopsProperties:
    @given(cube_and_node())
    def test_one_zero_partition(self, cube_node):
        cube, node = cube_node
        ones = set(bitops.one_positions(node, cube.dimension))
        zeros = set(bitops.zero_positions(node, cube.dimension))
        assert ones | zeros == set(range(cube.dimension))
        assert not ones & zeros
        assert len(ones) == bitops.popcount(node)

    @given(cube_and_two_nodes())
    def test_hamming_is_metric(self, cube_nodes):
        _, u, v = cube_nodes
        assert bitops.hamming_distance(u, v) == bitops.hamming_distance(v, u)
        assert (bitops.hamming_distance(u, v) == 0) == (u == v)

    @given(cube_and_two_nodes())
    def test_containment_antisymmetry(self, cube_nodes):
        _, u, v = cube_nodes
        if bitops.contains(u, v) and bitops.contains(v, u):
            assert u == v

    @given(cube_and_node())
    def test_flip_changes_hamming_by_one(self, cube_node):
        cube, node = cube_node
        for dim in range(cube.dimension):
            assert bitops.hamming_distance(node, bitops.flip_bit(node, dim)) == 1


class TestSubcubeProperties:
    @given(cube_and_node())
    def test_subcube_size_formula(self, cube_node):
        cube, inducer = cube_node
        sub = SubHypercube(cube, inducer)
        members = list(sub.nodes())
        assert len(members) == cube.subcube_size(inducer)
        assert len(set(members)) == len(members)

    @given(cube_and_node())
    def test_subcube_membership_characterization(self, cube_node):
        cube, inducer = cube_node
        sub = SubHypercube(cube, inducer)
        for node in cube.nodes():
            assert (node in sub) == cube.contains_node(node, inducer)

    @given(cube_and_two_nodes())
    def test_lemma33(self, cube_nodes):
        # inducer u2 contains u1  <=>  subcube(u2) ⊆ subcube(u1).
        cube, u1, u2 = cube_nodes
        sub1 = SubHypercube(cube, u1)
        sub2 = SubHypercube(cube, u2)
        if cube.contains_node(u2, u1):
            assert sub2.is_subcube_of(sub1)
            assert set(sub2.nodes()) <= set(sub1.nodes())

    @given(cube_and_node())
    def test_compact_expand_bijection(self, cube_node):
        cube, inducer = cube_node
        sub = SubHypercube(cube, inducer)
        seen = set()
        for node in sub.nodes():
            compact = sub.compact(node)
            assert 0 <= compact < sub.size
            assert sub.expand(compact) == node
            seen.add(compact)
        assert len(seen) == sub.size


class TestSbtProperties:
    @given(cube_and_node())
    def test_tree_spans_subcube_once(self, cube_node):
        cube, root = cube_node
        tree = SpanningBinomialTree.induced(cube, root)
        visited = [node for node, _ in tree.bfs()]
        assert sorted(visited) == sorted(SubHypercube(cube, root).nodes())
        assert len(set(visited)) == len(visited)

    @given(cube_and_node())
    def test_depth_equals_hamming(self, cube_node):
        cube, root = cube_node
        tree = SpanningBinomialTree.induced(cube, root)
        for node, depth in tree.bfs():
            assert depth == cube.hamming(node, root)

    @given(cube_and_node())
    def test_children_partition(self, cube_node):
        # Every non-root node appears as a child of exactly one node.
        cube, root = cube_node
        tree = SpanningBinomialTree.induced(cube, root)
        child_count: dict[int, int] = {}
        for node, _ in tree.bfs():
            for child in tree.children(node):
                child_count[child] = child_count.get(child, 0) + 1
        assert all(count == 1 for count in child_count.values())
        assert set(child_count) == {n for n, _ in tree.bfs()} - {root}

    @given(cube_and_node())
    def test_bfs_is_queue_order(self, cube_node):
        cube, root = cube_node
        tree = SpanningBinomialTree.induced(cube, root)
        depths = [depth for _, depth in tree.bfs()]
        assert depths == sorted(depths)


class TestMapperProperties:
    keyword_sets = st.sets(
        st.text(alphabet="abcdefghij", min_size=1, max_size=6), min_size=1, max_size=8
    )

    @given(dimensions, keyword_sets, keyword_sets)
    def test_fh_monotone(self, r, k1, k2):
        # K1 ⊆ K1 ∪ K2  ⇒  F_h(K1 ∪ K2) contains F_h(K1).
        cube = Hypercube(r)
        mapper = KeywordSetMapper(cube)
        union = k1 | k2
        assert cube.contains_node(mapper.node_for(union), mapper.node_for(k1))

    @given(dimensions, keyword_sets)
    def test_fh_weight_bounds(self, r, keywords):
        mapper = KeywordSetMapper(Hypercube(r))
        weight = mapper.one_count(keywords)
        normalized = {k.strip().casefold() for k in keywords}
        assert 1 <= weight <= min(len(normalized), r)

    @given(dimensions, keyword_sets)
    def test_fh_deterministic(self, r, keywords):
        a = KeywordSetMapper(Hypercube(r))
        b = KeywordSetMapper(Hypercube(r))
        assert a.node_for(keywords) == b.node_for(keywords)


class TestCacheProperties:
    operations = st.lists(
        st.tuples(
            st.sampled_from(["put", "get"]),
            st.integers(min_value=0, max_value=9),  # query id
            st.integers(min_value=0, max_value=5),  # result count
        ),
        max_size=60,
    )

    @given(st.integers(min_value=0, max_value=8), operations)
    def test_capacity_never_exceeded_entries(self, capacity, ops):
        cache = FifoQueryCache(capacity)
        self._run_ops(cache, ops)
        assert len(cache) <= capacity
        assert cache.used <= capacity

    @given(st.integers(min_value=0, max_value=12), operations)
    def test_capacity_never_exceeded_references(self, capacity, ops):
        cache = LruQueryCache(capacity, unit="references")
        self._run_ops(cache, ops)
        assert cache.used <= capacity

    @staticmethod
    def _run_ops(cache, ops):
        for op, query_id, count in ops:
            query = frozenset({f"q{query_id}"})
            if op == "put":
                results = tuple((f"o{i}", frozenset({"k"})) for i in range(count))
                cache.put(query, results, complete=count % 2 == 0)
            else:
                entry = cache.get(query, count or None)
                if entry is not None:
                    assert entry.satisfies(count or None)


class TestDhtProperties:
    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=30))
    @settings(deadline=None, max_examples=20)
    def test_chord_lookup_equals_local_owner(self, seed, num_nodes):
        from repro.dht.chord import ChordNetwork

        ring = ChordNetwork.build(bits=12, num_nodes=num_nodes, seed=seed)
        origin = ring.any_address()
        for key in range(0, 4096, 487):
            assert ring.lookup(key, origin=origin).owner == ring.local_owner(key)

    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=30))
    @settings(deadline=None, max_examples=20)
    def test_pastry_lookup_equals_local_owner(self, seed, num_nodes):
        from repro.dht.pastry import PastryNetwork

        overlay = PastryNetwork.build(bits=12, num_nodes=num_nodes, seed=seed)
        origin = overlay.any_address()
        for key in range(0, 4096, 487):
            assert overlay.lookup(key, origin=origin).owner == overlay.local_owner(key)

    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=2, max_value=30))
    @settings(deadline=None, max_examples=15)
    def test_kademlia_lookup_equals_local_owner(self, seed, num_nodes):
        from repro.dht.kademlia import KademliaNetwork

        overlay = KademliaNetwork.build(bits=12, num_nodes=num_nodes, seed=seed)
        origin = overlay.any_address()
        for key in range(0, 4096, 487):
            assert overlay.lookup(key, origin=origin).owner == overlay.local_owner(key)

    @given(st.integers(min_value=2, max_value=7))
    @settings(deadline=None, max_examples=6)
    def test_hypercup_routing_is_shortest_path(self, bits):
        from repro.dht.hypercup import HypercubeOverlay

        overlay = HypercubeOverlay.build(bits=bits)
        origin = 0
        for key in range(1 << bits):
            result = overlay.lookup(key, origin=origin)
            assert result.owner == key
            assert len(result.path) == bin(origin ^ key).count("1") + 1


class TestAnalysisProperties:
    @given(
        st.integers(min_value=1, max_value=14), st.integers(min_value=0, max_value=25)
    )
    @settings(deadline=None)
    def test_eq1_is_probability_distribution(self, r, m):
        pmf = one_count_distribution(r, m)
        assert all(p >= -1e-12 for p in pmf)
        assert math.fsum(pmf) == __import__("pytest").approx(1.0, abs=1e-9)

    @given(
        st.integers(min_value=1, max_value=14), st.integers(min_value=0, max_value=25)
    )
    @settings(deadline=None)
    def test_eq2_bounds(self, r, m):
        value = expected_one_count(r, m)
        assert 0 <= value <= min(r, m) + 1e-9

    @given(
        st.integers(min_value=2, max_value=200),
        st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
    )
    def test_zipf_pmf_valid(self, n, s):
        z = ZipfDistribution(n, s)
        total = math.fsum(z.pmf(k) for k in range(1, n + 1))
        assert total == __import__("pytest").approx(1.0, abs=1e-9)
