"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import ServiceConfig
from repro.core.index import HypercubeIndex
from repro.core.service import KeywordSearchService
from repro.dht.chord import ChordNetwork
from repro.hypercube.hypercube import Hypercube
from repro.workload.corpus import SyntheticCorpus

CATALOGUE = {
    "take-five": frozenset({"mp3", "jazz", "saxophone"}),
    "so-what": frozenset({"mp3", "jazz", "trumpet"}),
    "blue-in-green": frozenset({"mp3", "jazz", "piano", "modal"}),
    "moonlight": frozenset({"flac", "classical", "piano"}),
    "kind-of-blue": frozenset({"mp3", "jazz"}),
}


@pytest.fixture(scope="session")
def small_corpus() -> SyntheticCorpus:
    """A 600-object corpus shared by workload-heavy tests."""
    return SyntheticCorpus.generate(num_objects=600, seed=101)


@pytest.fixture()
def chord_ring() -> ChordNetwork:
    return ChordNetwork.build(bits=16, num_nodes=24, seed=5)


@pytest.fixture()
def loaded_index(chord_ring) -> HypercubeIndex:
    """A 6-cube index over the Chord ring with the music catalogue."""
    index = HypercubeIndex(Hypercube(6), chord_ring)
    holder = chord_ring.any_address()
    for object_id, keywords in CATALOGUE.items():
        index.insert(object_id, keywords, holder)
    return index


@pytest.fixture()
def service() -> KeywordSearchService:
    svc = KeywordSearchService.create(ServiceConfig(dimension=6, num_dht_nodes=16, seed=3))
    for object_id, keywords in CATALOGUE.items():
        svc.publish(object_id, keywords)
    return svc
