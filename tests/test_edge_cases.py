"""Edge cases across layers: tiny cubes, degenerate queries, empty
indexes, single-node networks, extreme parameters."""

import pytest

from repro.core.cumulative import CumulativeSearchSession
from repro.core.index import HypercubeIndex
from repro.core.search import SuperSetSearch, TraversalOrder
from repro.dht.chord import ChordNetwork
from repro.hypercube.hypercube import Hypercube
from repro.hypercube.sbt import SpanningBinomialTree
from repro.hypercube.subcube import SubHypercube


class TestTinyCubes:
    def test_one_dimensional_cube(self):
        ring = ChordNetwork.build(bits=16, num_nodes=4, seed=1)
        index = HypercubeIndex(Hypercube(1), ring)
        index.insert("a", {"x"}, ring.any_address())
        index.insert("b", {"x", "y"}, ring.any_address())
        result = SuperSetSearch(index).run({"x"})
        assert set(result.object_ids) == {"a", "b"}
        assert len(result.visits) <= 2

    def test_more_keywords_than_dimensions(self):
        # 12 keywords into a 3-cube: heavy collisions, still correct.
        ring = ChordNetwork.build(bits=16, num_nodes=4, seed=2)
        index = HypercubeIndex(Hypercube(3), ring)
        keywords = {f"kw{i}" for i in range(12)}
        index.insert("dense", keywords, ring.any_address())
        assert index.pin_search(keywords).object_ids == ("dense",)
        partial = set(list(keywords)[:5])
        result = SuperSetSearch(index).run(partial)
        assert result.object_ids == ("dense",)

    def test_zero_dimension_cube_single_node(self):
        cube = Hypercube(0)
        sub = SubHypercube(cube, 0)
        assert list(sub.nodes()) == [0]
        tree = SpanningBinomialTree.induced(cube, 0)
        assert list(tree.bfs()) == [(0, 0)]


class TestSingleNodeNetwork:
    def test_everything_local(self):
        ring = ChordNetwork.build(bits=16, num_nodes=1, seed=3)
        index = HypercubeIndex(Hypercube(4), ring)
        only = ring.any_address()
        index.insert("solo", {"a", "b"}, only)
        assert index.pin_search({"a", "b"}).object_ids == ("solo",)
        result = SuperSetSearch(index).run({"a"})
        assert result.object_ids == ("solo",)
        # All visits map to the single physical node.
        assert {visit.physical for visit in result.visits} == {only}


class TestEmptyIndex:
    @pytest.fixture()
    def empty_index(self):
        ring = ChordNetwork.build(bits=16, num_nodes=8, seed=4)
        return HypercubeIndex(Hypercube(6), ring)

    def test_searches_return_nothing(self, empty_index):
        for order in TraversalOrder:
            result = SuperSetSearch(empty_index).run({"ghost"}, order=order)
            assert result.objects == ()
            assert result.complete

    def test_cumulative_on_empty(self, empty_index):
        session = CumulativeSearchSession(empty_index, {"ghost"})
        assert session.drain() == []

    def test_load_is_zero(self, empty_index):
        assert empty_index.total_indexed() == 0
        assert all(v == 0 for v in empty_index.load_by_logical_node().values())

    def test_delete_nonexistent(self, empty_index):
        holder = empty_index.dolr.any_address()
        # Deleting an object that was never inserted: the DOLR reports
        # the last copy gone (nothing there), index removal is a no-op.
        removed = empty_index.delete("never", {"a"}, holder)
        assert removed is True
        assert empty_index.total_indexed() == 0


class TestQueryShapes:
    @pytest.fixture()
    def index(self):
        ring = ChordNetwork.build(bits=16, num_nodes=8, seed=5)
        index = HypercubeIndex(Hypercube(6), ring)
        index.insert("obj", {"alpha", "beta", "gamma"}, ring.any_address())
        return index

    def test_query_equals_full_keyword_set(self, index):
        result = SuperSetSearch(index).run({"alpha", "beta", "gamma"})
        assert result.object_ids == ("obj",)

    def test_query_superset_of_object_finds_nothing(self, index):
        result = SuperSetSearch(index).run({"alpha", "beta", "gamma", "delta"})
        assert result.objects == ()

    def test_duplicate_keywords_in_query(self, index):
        result = SuperSetSearch(index).run(["alpha", "Alpha", " ALPHA "])
        assert result.object_ids == ("obj",)

    def test_empty_query_rejected(self, index):
        with pytest.raises(ValueError):
            SuperSetSearch(index).run(set())
        with pytest.raises(ValueError):
            index.pin_search([])

    def test_whitespace_keyword_rejected(self, index):
        with pytest.raises(ValueError):
            index.pin_search({"   "})


class TestHugeThresholds:
    def test_threshold_far_beyond_matches(self):
        ring = ChordNetwork.build(bits=16, num_nodes=8, seed=6)
        index = HypercubeIndex(Hypercube(5), ring)
        for i in range(4):
            index.insert(f"o{i}", {"k", f"extra{i}"}, ring.any_address())
        result = SuperSetSearch(index).run({"k"}, threshold=10_000)
        assert len(result.objects) == 4
        assert result.complete

    def test_threshold_one_each_order(self):
        ring = ChordNetwork.build(bits=16, num_nodes=8, seed=7)
        index = HypercubeIndex(Hypercube(5), ring)
        for i in range(6):
            index.insert(f"o{i}", {"k", f"x{i}"}, ring.any_address())
        for order in TraversalOrder:
            result = SuperSetSearch(index).run({"k"}, threshold=1, order=order)
            assert len(result.objects) == 1


class TestManyLogicalPerPhysical:
    def test_r_much_larger_than_network(self):
        # 2**12 logical nodes on 4 peers: every peer plays ~1024 nodes.
        ring = ChordNetwork.build(bits=16, num_nodes=4, seed=8)
        index = HypercubeIndex(Hypercube(12), ring)
        for i in range(30):
            index.insert(f"o{i}", {f"k{i % 5}", f"j{i % 3}", "all"}, ring.any_address())
        result = SuperSetSearch(index).run({"all"})
        assert len(result.objects) == 30
        assert len(result.object_ids) == len(set(result.object_ids))
