"""Smoke tests for the example scripts.

The two fast examples run end to end; the heavier ones are
compile-checked so a refactor that breaks their imports or syntax fails
here rather than on a user's machine.
"""

import importlib.util
import pathlib
import py_compile
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestRunnableExamples:
    def test_quickstart_runs(self, capsys):
        load_example("quickstart").main()
        output = capsys.readouterr().out
        assert "pin search" in output
        assert "take-five.mp3" in output

    def test_service_discovery_runs(self, capsys):
        load_example("service_discovery").main()
        output = capsys.readouterr().out
        assert "registered 300 services" in output
        assert "no longer discoverable" in output


class TestAllExamplesCompile:
    @pytest.mark.parametrize(
        "name",
        [path.stem for path in sorted(EXAMPLES_DIR.glob("*.py"))],
    )
    def test_compiles(self, name, tmp_path):
        py_compile.compile(
            str(EXAMPLES_DIR / f"{name}.py"),
            cfile=str(tmp_path / f"{name}.pyc"),
            doraise=True,
        )

    def test_every_example_has_main(self):
        for path in EXAMPLES_DIR.glob("*.py"):
            source = path.read_text(encoding="utf-8")
            assert "def main()" in source, path.name
            assert '__name__ == "__main__"' in source, path.name
