"""The load-generation package and the per-call-cohort backoff fix."""

import itertools

import pytest

from repro.core.config import ServiceConfig
from repro.load import (
    ClosedLoopLoad,
    ConstantArrivals,
    FixedQueryMix,
    LoadReport,
    MultiprocessLoad,
    OpenLoopLoad,
    PoissonArrivals,
    WorkerSpec,
    ZipfQueryMix,
)
from repro.net.cluster import LocalCluster
from repro.net.errors import NodeBusyError
from repro.net.transport import RpcCall
from repro.sim.network import SimulatedNetwork
from repro.sim.resilience import ResilientChannel, RetryPolicy
from repro.workload.corpus import SyntheticCorpus

CONFIG = ServiceConfig(dimension=3, num_dht_nodes=4, seed=3)


class TestArrivals:
    def test_constant_arrivals_are_evenly_spaced(self):
        offsets = list(itertools.islice(ConstantArrivals(4.0).offsets(), 5))
        assert offsets == [0.0, 0.25, 0.5, 0.75, 1.0]

    def test_poisson_arrivals_are_seeded_and_nondecreasing(self):
        first = list(itertools.islice(PoissonArrivals(10.0, seed=42).offsets(), 50))
        again = list(itertools.islice(PoissonArrivals(10.0, seed=42).offsets(), 50))
        other = list(itertools.islice(PoissonArrivals(10.0, seed=7).offsets(), 50))
        assert first == again
        assert first != other
        assert all(b >= a for a, b in zip(first, first[1:]))

    def test_rates_must_be_positive(self):
        with pytest.raises(ValueError):
            ConstantArrivals(0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(-1.0)


class TestMixes:
    def test_fixed_mix_cycles_in_order(self):
        mix = FixedQueryMix([frozenset({"a"}), frozenset({"b"})])
        drawn = [mix.next_query() for _ in range(5)]
        assert drawn == [
            frozenset({"a"}), frozenset({"b"}), frozenset({"a"}),
            frozenset({"b"}), frozenset({"a"}),
        ]

    def test_fixed_mix_rejects_empty(self):
        with pytest.raises(ValueError):
            FixedQueryMix([])

    def test_zipf_mix_is_deterministic_per_seed(self):
        corpus = SyntheticCorpus.generate(num_objects=100, seed=1)
        mix_a = ZipfQueryMix.from_corpus(corpus, pool_size=50, seed=9)
        mix_b = ZipfQueryMix.from_corpus(corpus, pool_size=50, seed=9)
        draws_a = [mix_a.next_query() for _ in range(30)]
        draws_b = [mix_b.next_query() for _ in range(30)]
        assert draws_a == draws_b
        assert all(isinstance(query, frozenset) and query for query in draws_a)
        # The Zipf head recurs: far fewer distinct queries than draws.
        assert len(set(draws_a)) < len(draws_a)


class TestLoadReport:
    def _report(self, latencies):
        return LoadReport(
            mode="open", elapsed_s=10.0, offered=len(latencies) + 2,
            ok=len(latencies), busy=1, errors=1, abandoned=0,
            latencies_ms=list(latencies),
        )

    def test_rates_and_percentiles(self):
        report = self._report([10.0, 20.0, 30.0, 40.0])
        assert report.completed == 6
        assert report.goodput == pytest.approx(0.4)
        assert report.offered_rate == pytest.approx(0.6)
        assert report.p50_ms == pytest.approx(30.0)  # nearest-rank
        assert report.p99_ms == pytest.approx(40.0)

    def test_empty_latencies_do_not_crash(self):
        report = LoadReport("closed", 1.0, 0, 0, 0, 0, 0)
        assert report.p99_ms == 0.0
        assert report.goodput == 0.0

    def test_merge_pools_counts_and_latencies(self):
        merged = LoadReport.merge([
            LoadReport("open", 10.0, 100, 90, 5, 5, 0, [1.0, 2.0]),
            LoadReport("open", 12.0, 50, 50, 0, 0, 3, [3.0]),
        ])
        assert merged.offered == 150 and merged.ok == 140
        assert merged.busy == 5 and merged.errors == 5 and merged.abandoned == 3
        assert merged.elapsed_s == 12.0  # concurrent runs: the longest
        assert sorted(merged.latencies_ms) == [1.0, 2.0, 3.0]
        with pytest.raises(ValueError):
            LoadReport.merge([])

    def test_to_row_has_the_bench_table_shape(self):
        row = self._report([10.0]).to_row()
        for key in ("mode", "offered", "ok", "busy", "errors", "abandoned",
                    "goodput_qps", "p50_ms", "p95_ms", "p99_ms"):
            assert key in row


class _ScriptedClient:
    """A Client whose search outcomes follow a fixed script."""

    def __init__(self, outcomes=None, delay_s: float = 0.0):
        import threading
        import time

        self._time = time
        self._lock = threading.Lock()
        self._outcomes = list(outcomes or [])
        self._cursor = 0
        self.delay_s = delay_s
        self.calls = 0

    def search(self, keywords, options=None):
        with self._lock:
            self.calls += 1
            outcome = (
                self._outcomes[self._cursor % len(self._outcomes)]
                if self._outcomes
                else None
            )
            self._cursor += 1
        if self.delay_s:
            self._time.sleep(self.delay_s)
        if outcome is not None:
            raise outcome
        return object()

    def insert(self, object_id, keywords, *, holder=None):
        raise NotImplementedError

    def delete(self, object_id, *, holder):
        raise NotImplementedError

    def close(self):
        pass


class TestLoops:
    def test_closed_loop_classifies_outcomes(self):
        client = _ScriptedClient([None, NodeBusyError(1), ValueError("boom")])
        report = ClosedLoopLoad(client, FixedQueryMix([frozenset({"q"})]), workers=2).run(0.2)
        assert report.mode == "closed"
        assert report.offered == report.completed == client.calls
        assert report.ok and report.busy and report.errors
        assert len(report.latencies_ms) == report.ok  # shed/failed: no sample

    def test_open_loop_offers_the_schedule_regardless_of_completions(self):
        client = _ScriptedClient()
        report = OpenLoopLoad(
            client, FixedQueryMix([frozenset({"q"})]), ConstantArrivals(100.0), workers=4
        ).run(0.2)
        assert report.mode == "open"
        assert report.offered == 20  # 100 qps for 0.2 s, fixed up front
        assert report.ok == 20
        assert report.elapsed_s >= 0.2

    def test_open_loop_abandons_stale_arrivals(self):
        # One worker at 0.02 s/query cannot keep up with 200 qps; the
        # backlog ages past max_lag_s and is abandoned, not waited out.
        client = _ScriptedClient(delay_s=0.02)
        report = OpenLoopLoad(
            client,
            FixedQueryMix([frozenset({"q"})]),
            ConstantArrivals(200.0),
            workers=1,
            max_lag_s=0.05,
        ).run(0.25)
        assert report.abandoned > 0
        assert report.completed + report.abandoned == report.offered

    def test_loops_validate_their_knobs(self):
        client = _ScriptedClient()
        mix = FixedQueryMix([frozenset({"q"})])
        with pytest.raises(ValueError):
            ClosedLoopLoad(client, mix, workers=0)
        with pytest.raises(ValueError):
            OpenLoopLoad(client, mix, ConstantArrivals(1.0), max_lag_s=0.0)
        with pytest.raises(ValueError):
            ClosedLoopLoad(client, mix).run(0.0)

    def test_closed_loop_against_a_real_cluster(self):
        with LocalCluster(CONFIG) as cluster:
            client = cluster.client()
            client.insert("a.pdf", {"dht", "p2p"})
            report = ClosedLoopLoad(
                client, FixedQueryMix([frozenset({"dht"})]), workers=2
            ).run(0.3)
        assert report.ok > 0
        assert report.errors == 0
        assert report.p99_ms > 0.0


class TestWorkerSpec:
    def test_validates_mode_and_rate(self):
        with pytest.raises(ValueError):
            WorkerSpec(CONFIG, {}, mode="half-open")
        with pytest.raises(ValueError):
            WorkerSpec(CONFIG, {}, mode="open")  # open needs a rate

    def test_fleet_splits_rate_and_diversifies_seeds(self):
        spec = WorkerSpec(CONFIG, {}, mode="open", rate=300.0, seed=2)
        fleet = spec.fleet(3)
        assert len(fleet) == 3
        assert all(worker.rate == pytest.approx(100.0) for worker in fleet)
        assert len({worker.seed for worker in fleet}) == 3
        with pytest.raises(ValueError):
            spec.fleet(0)

    def test_single_spec_runs_inline_against_a_cluster(self):
        with LocalCluster(CONFIG) as cluster:
            cluster.client().insert("a.pdf", {"dht", "p2p"})
            spec = WorkerSpec(
                cluster.config,
                dict(cluster.endpoints),
                mode="closed",
                duration_s=0.3,
                threads=2,
                queries=(frozenset({"dht"}),),
            )
            report = MultiprocessLoad([spec]).run()
        assert report.ok > 0
        assert report.errors == 0

    def test_multiprocess_load_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            MultiprocessLoad([])


class TestCohortBackoff:
    def test_rpc_many_reissues_a_ready_call_before_slow_cohorts(self):
        """Regression: backoff is per call cohort, not per round — a call
        whose retry is due must not wait for a batch mate with a longer
        backoff."""
        network = SimulatedNetwork()
        network.register(2, lambda message: None)

        def always_saturated(message):
            raise NodeBusyError(5, queue_depth=9, retry_after=100.0)

        retry_times: list[float] = []

        def briefly_saturated(message):
            retry_times.append(network.now())
            if len(retry_times) == 1:
                raise NodeBusyError(6, queue_depth=1, retry_after=2.0)
            return "six"

        network.register(5, always_saturated)
        network.register(6, briefly_saturated)
        channel = ResilientChannel(
            network, RetryPolicy(max_attempts=2, base_delay=1.0, jitter=0.0)
        )
        outcomes = channel.rpc_many([RpcCall(2, 5, "a"), RpcCall(2, 6, "b")])
        assert isinstance(outcomes[0].error, NodeBusyError)
        assert outcomes[1].value == "six"
        # Call 6's retry fired around its own 2-unit backoff; under the
        # old per-round maximum it would have waited for call 5's 100.
        assert len(retry_times) == 2
        assert retry_times[1] - retry_times[0] < 50.0

    def test_rpc_many_total_backoff_is_the_longest_single_delay(self):
        """Two calls with identical backoff retry concurrently: the
        elapsed virtual time tracks one backoff, not the sum."""
        network = SimulatedNetwork()
        network.register(2, lambda message: None)
        for address in (5, 6):
            network.register(address, lambda message: "ok")
        network.inject_busy(5, count=1)
        network.inject_busy(6, count=1)
        channel = ResilientChannel(
            network, RetryPolicy(max_attempts=2, base_delay=4.0, jitter=0.0)
        )
        started = network.now()
        outcomes = channel.rpc_many([RpcCall(2, 5, "a"), RpcCall(2, 6, "b")])
        assert [outcome.value for outcome in outcomes] == ["ok", "ok"]
        elapsed = network.now() - started
        assert elapsed < 8.0  # one 4-unit backoff plus round trips, not 4+4
