"""Tests for the TCP transport (repro.net.aio) and its resilience hooks."""

import threading
import time

import pytest

from repro.net.aio import AsyncioTransport
from repro.net.errors import (
    PeerUnreachableError,
    RemoteHandlerError,
    RpcTimeoutError,
    TransportError,
)
from repro.net.transport import RpcCall, Transport
from repro.sim.network import SimulatedNetwork
from repro.sim.resilience import ResilientChannel, RetryPolicy


@pytest.fixture
def transport():
    with AsyncioTransport(rpc_timeout=5.0) as transport:
        yield transport


def echo_handler(message):
    return {"echo": message.payload, "kind": message.kind}


class TestTransportContract:
    def test_both_media_satisfy_the_protocol(self, transport):
        assert isinstance(transport, Transport)
        assert isinstance(SimulatedNetwork(), Transport)

    def test_rpc_roundtrip_over_sockets(self, transport):
        transport.register(1, echo_handler)
        transport.register(2, echo_handler)
        result = transport.rpc(1, 2, "test.echo", {"keywords": frozenset({"dht", "p2p"})})
        assert result == {"echo": {"keywords": frozenset({"dht", "p2p"})}, "kind": "test.echo"}

    def test_each_endpoint_gets_its_own_port(self, transport):
        transport.register(1, echo_handler)
        transport.register(2, echo_handler)
        ports = {port for _, port in transport.endpoints.values()}
        assert len(ports) == 2

    def test_local_rpc_is_free(self, transport):
        transport.register(1, echo_handler)
        transport.rpc(1, 1, "test.echo", {"x": 1})
        assert transport.metrics.counter("network.messages") == 0

    def test_self_addressed_rpc_to_unserved_address_crosses_the_wire(self):
        # A daemon-shaped transport registers handlers for every node in
        # the deployment, but addresses it does not serve live in some
        # other process: even src == dst must dial the peer, never touch
        # the local shadow object.
        with AsyncioTransport(rpc_timeout=5.0, serve_addresses={1}) as authority:
            authority.register(1, echo_handler)
            authority.register(2, lambda m: {"who": "authority"})
            host, port = authority.endpoints[1]
            with AsyncioTransport(
                rpc_timeout=5.0, serve_addresses=set(), peers={1: (host, port)}
            ) as daemon:
                daemon.register(1, lambda m: {"who": "shadow"})
                result = daemon.rpc(1, 1, "test.echo", {"x": 1})
        assert result == {"echo": {"x": 1}, "kind": "test.echo"}

    def test_remote_rpc_accounts_request_and_reply(self, transport):
        transport.register(1, echo_handler)
        transport.register(2, echo_handler)
        with transport.trace() as window:
            transport.rpc(1, 2, "test.echo", {})
        assert transport.metrics.counter("network.messages") == 2
        assert window.message_count == 2
        assert window.request_count == 1
        assert window.nodes_contacted() == {2}

    def test_send_datagram_accounted_and_delivered(self, transport):
        received = []
        done = threading.Event()

        def collector(message):
            received.append(message.payload)
            done.set()

        transport.register(1, echo_handler)
        transport.register(2, collector)
        transport.send(1, 2, "test.note", {"n": 1})
        assert done.wait(5.0)
        assert received == [{"n": 1}]
        assert transport.metrics.counter("network.messages") == 1

    def test_send_deliver_false_accounts_without_transmitting(self, transport):
        transport.register(1, echo_handler)
        transport.send(1, 99, "test.note", {"n": 1}, deliver=False)
        assert transport.metrics.counter("network.messages") == 1

    def test_send_to_dead_peer_is_silent(self, transport):
        transport.register(1, echo_handler)
        transport.send(1, 424242, "test.note", {})  # no such endpoint: lost, no raise
        assert transport.metrics.counter("network.messages") == 1

    def test_handler_exception_becomes_remote_handler_error(self, transport):
        def boom(message):
            raise ValueError("table is empty")

        transport.register(1, echo_handler)
        transport.register(2, boom)
        with pytest.raises(RemoteHandlerError) as info:
            transport.rpc(1, 2, "test.boom", {})
        assert info.value.error_type == "ValueError"
        assert info.value.remote_message == "table is empty"
        assert not isinstance(info.value, PeerUnreachableError)  # not retryable
        # The connection survives the error: the next call works.
        transport.register(2, echo_handler)
        assert transport.rpc(1, 2, "test.echo", {})["kind"] == "test.echo"

    def test_unknown_destination_raises_unreachable(self, transport):
        transport.register(1, echo_handler)
        with pytest.raises(PeerUnreachableError) as info:
            transport.rpc(1, 424242, "test.echo", {})
        assert info.value.address == 424242
        # The failed request was still accounted: it was sent into the void.
        assert transport.metrics.counter("network.messages") == 1

    def test_nested_rpc_from_handler(self, transport):
        # A handler that itself calls over the network (depth-1 nesting,
        # the shape chord route_step relay patterns could take).
        transport.register(3, lambda m: {"leaf": m.payload["x"] * 2})

        def relay(message):
            return transport.rpc(2, 3, "test.leaf", {"x": message.payload["x"]})

        transport.register(1, echo_handler)
        transport.register(2, relay)
        assert transport.rpc(1, 2, "test.relay", {"x": 21}) == {"leaf": 42}

    def test_concurrent_rpcs_multiplex_one_connection(self, transport):
        transport.register(1, echo_handler)
        transport.register(2, lambda m: m.payload["n"])
        results = []
        errors = []

        def worker(n):
            try:
                results.append(transport.rpc(1, 2, "test.n", {"n": n}))
            except TransportError as error:  # pragma: no cover - failure detail
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(20)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert sorted(results) == list(range(20))
        assert transport.open_connection_count() == 2  # one client + one server side


class TestFailureSemantics:
    def test_failed_endpoint_times_out(self, transport):
        transport.register(1, echo_handler)
        transport.register(2, echo_handler)
        transport.fail(2)
        assert not transport.is_alive(2)
        started = time.monotonic()
        with pytest.raises(RpcTimeoutError) as info:
            transport.rpc(1, 2, "test.echo", {}, timeout=200)  # 200 units = 0.2 s
        assert info.value.address == 2
        assert time.monotonic() - started < 2.0
        transport.recover(2)
        assert transport.is_alive(2)
        assert transport.rpc(1, 2, "test.echo", {})["kind"] == "test.echo"

    def test_rpc_timeout_is_retryable(self):
        assert issubclass(RpcTimeoutError, PeerUnreachableError)

    def test_cannot_fail_unknown_address(self, transport):
        with pytest.raises(PeerUnreachableError):
            transport.fail(99)

    def test_resilient_channel_retries_through_dropped_connection(self, transport):
        """Satellite check: a connection dropped mid-request surfaces as
        a retryable transport error and the channel's next attempt,
        over a fresh connection, succeeds."""
        transport.register(1, echo_handler)
        transport.register(2, lambda m: {"ok": True})
        channel = ResilientChannel(transport, RetryPolicy(max_attempts=3, base_delay=1.0))
        transport.rpc(1, 2, "test.warm", {})  # open the pooled connection
        transport.drop_next_requests(2, 1)
        result = channel.rpc(1, 2, "test.retry", {})
        assert result == {"ok": True}
        assert transport.metrics.counter("rpc.retries") == 1
        assert transport.metrics.counter("rpc.attempts") == 2

    def test_dropped_connection_without_retries_raises_unreachable(self, transport):
        transport.register(1, echo_handler)
        transport.register(2, echo_handler)
        transport.rpc(1, 2, "test.warm", {})
        transport.drop_next_requests(2, 1)
        with pytest.raises(PeerUnreachableError):
            transport.rpc(1, 2, "test.echo", {})

    def test_retry_policy_deadline_bounds_socket_wait(self, transport):
        transport.register(1, echo_handler)
        transport.register(2, echo_handler)
        transport.fail(2)
        channel = ResilientChannel(
            transport, RetryPolicy(max_attempts=5, base_delay=10.0, deadline=300.0)
        )
        started = time.monotonic()
        with pytest.raises(PeerUnreachableError):
            channel.rpc(1, 2, "test.echo", {})
        # Deadline is 300 units = 0.3 s; without the deadline mapping the
        # first attempt alone would block for the 5 s default timeout.
        assert time.monotonic() - started < 2.0


class TestLifecycle:
    def test_close_is_idempotent_and_leak_free(self):
        transport = AsyncioTransport()
        transport.register(1, echo_handler)
        transport.register(2, echo_handler)
        transport.rpc(1, 2, "test.echo", {})
        assert transport.open_connection_count() > 0
        before = threading.active_count()
        transport.close()
        transport.close()
        assert transport.open_connection_count() == 0
        assert threading.active_count() <= before
        assert not any(
            thread.name.startswith("repro-net") for thread in threading.enumerate()
        )
        with pytest.raises(RuntimeError):
            transport.rpc(1, 2, "test.echo", {})

    def test_unregister_stops_serving(self, transport):
        transport.register(1, echo_handler)
        transport.register(2, echo_handler)
        transport.unregister(2)
        assert 2 not in transport.endpoints
        assert not transport.is_alive(2)
        with pytest.raises(PeerUnreachableError):
            transport.rpc(1, 2, "test.echo", {})

    def test_context_manager_closes(self):
        with AsyncioTransport() as transport:
            transport.register(1, echo_handler)
        assert transport.closed


class TestBatchRpcOverSockets:
    """AsyncioTransport.rpc_many: truly concurrent in-flight requests."""

    def register_trio(self, transport):
        for address in (1, 2, 3):
            transport.register(address, lambda m, a=address: {"from": a, **m.payload})

    def calls(self, *dsts, src=1):
        return [RpcCall(src, dst, "test.ping", {"n": i}) for i, dst in enumerate(dsts)]

    def test_values_in_call_order(self, transport):
        self.register_trio(transport)
        outcomes = transport.rpc_many(self.calls(3, 2, 1))
        assert [o.unwrap()["from"] for o in outcomes] == [3, 2, 1]
        assert [o.unwrap()["n"] for o in outcomes] == [0, 1, 2]

    def test_batch_accounts_two_messages_per_remote_call(self, transport):
        self.register_trio(transport)
        with transport.trace() as window:
            transport.rpc_many(self.calls(2, 3))
        assert window.message_count == 4
        assert window.request_count == 2
        assert window.nodes_contacted() == {2, 3}
        assert transport.metrics.counter("net.batch_rpcs") == 1
        assert transport.metrics.counter("net.batch_calls") == 2

    def test_calls_are_in_flight_together(self, transport):
        self.register_trio(transport)
        barrier = threading.Barrier(4, timeout=5.0)

        def slow(message):
            barrier.wait()  # releases only when all 4 requests arrived
            return {"ok": True}

        for address in (4, 5, 6, 7):
            transport.register(address, slow)
        outcomes = transport.rpc_many(self.calls(4, 5, 6, 7))
        # A sequential issue order would deadlock the barrier (and time
        # out); all four succeeding proves the requests overlapped.
        assert all(o.ok for o in outcomes)

    def test_dead_destination_is_a_per_call_outcome(self):
        with AsyncioTransport(rpc_timeout=0.2) as transport:
            self.register_trio(transport)
            transport.fail(2)
            outcomes = transport.rpc_many(self.calls(1, 2, 3))
            assert [o.ok for o in outcomes] == [True, False, True]
            assert isinstance(outcomes[1].error, PeerUnreachableError)

    def test_handler_exception_becomes_remote_error_outcome(self, transport):
        self.register_trio(transport)

        def boom(message):
            raise RuntimeError("poisoned")

        transport.register(4, boom)
        outcomes = transport.rpc_many(self.calls(3, 4))
        assert outcomes[0].ok
        assert isinstance(outcomes[1].error, RemoteHandlerError)

    def test_local_served_call_short_circuits(self, transport):
        self.register_trio(transport)
        outcomes = transport.rpc_many([RpcCall(1, 1, "test.ping", {"n": 9})])
        assert outcomes[0].unwrap() == {"from": 1, "n": 9}
        assert transport.metrics.counter("network.messages") == 0

    def test_empty_batch_is_a_noop(self, transport):
        assert transport.rpc_many([]) == []
