"""Shape tests for the experiment runners (scaled-down parameters).

These assert the *qualitative* claims of each paper artifact, not
absolute numbers — the same standard EXPERIMENTS.md records for the
full-scale runs.
"""

import pytest

from repro.experiments import (
    ablation,
    bandwidth,
    churn,
    decomposed,
    dhtcmp,
    eq1,
    fault,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    hotspot,
    table1,
)
from repro.experiments.harness import ExperimentResult

N = 4_000  # shared scaled-down corpus size (memoized across tests)


class TestHarness:
    def test_table_rendering(self):
        result = ExperimentResult(
            "demo", "d", {}, [{"a": 1, "b": 0.5}, {"a": 2, "c": "x"}]
        )
        table = result.table()
        assert "a" in table and "b" in table and "c" in table
        assert result.columns() == ["a", "b", "c"]

    def test_table_row_cap(self):
        result = ExperimentResult("demo", "d", {}, [{"a": i} for i in range(10)])
        assert "more rows" in result.table(max_rows=3)

    def test_series_pivot(self):
        result = ExperimentResult(
            "demo", "d", {},
            [{"g": "x", "t": 1, "v": 2}, {"g": "x", "t": 2, "v": 3}],
        )
        assert result.series("g", "t", "v") == {"x": [(1, 2), (2, 3)]}

    def test_render_includes_notes(self):
        result = ExperimentResult("demo", "d", {"p": 1}, [], notes=["hello"])
        assert "note: hello" in result.render()


class TestTable1:
    def test_contains_paper_rows(self):
        result = table1.run(num_objects=500, seed=0)
        ids = [row["id"] for row in result.rows]
        assert "11" in ids and "18491" in ids

    def test_synthetic_rows_same_schema(self):
        result = table1.run(synthetic_samples=2, num_objects=500, seed=0)
        synthetic = [r for r in result.rows if r["source"] == "synthetic"]
        assert len(synthetic) == 2
        assert all(r["url"].startswith("http://") for r in synthetic)


class TestFig5:
    def test_mean_matches_paper(self):
        result = fig5.run(num_objects=N, seed=0)
        assert any("7.3" in note for note in result.notes)
        fractions = [row["fraction"] for row in result.rows]
        assert sum(fractions) == pytest.approx(1.0)

    def test_right_skew(self):
        result = fig5.run(num_objects=N, seed=0)
        by_size = {row["keyword_set_size"]: row["objects"] for row in result.rows}
        mode = max(by_size, key=by_size.get)
        tail = sum(c for s, c in by_size.items() if s > mode)
        head = sum(c for s, c in by_size.items() if s < mode)
        assert tail > head  # right-skewed around the mode


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run(
            num_objects=N, seed=0, dimensions=(6, 10, 14), dii_dimensions=(10,)
        )

    def test_optimum_near_ten(self, result):
        ginis = {
            note.split("]")[0].split("[")[1]: float(note.split("= ")[1])
            for note in result.notes
        }
        assert ginis["hypercube-10"] < ginis["hypercube-6"]
        assert ginis["hypercube-10"] < ginis["hypercube-14"]

    def test_dii_worse_than_hypercube(self, result):
        ginis = {
            note.split("]")[0].split("[")[1]: float(note.split("= ")[1])
            for note in result.notes
        }
        assert ginis["DII-10"] > ginis["hypercube-10"]
        assert ginis["DHT-10"] < ginis["hypercube-10"]

    def test_curves_monotone(self, result):
        for label, points in result.series("scheme", "node_fraction", "object_fraction").items():
            shares = [share for _, share in points]
            assert all(a <= b + 1e-12 for a, b in zip(shares, shares[1:])), label
            assert shares[-1] == pytest.approx(1.0)


class TestFig7:
    def test_eq1_predicts_empirical(self):
        result = fig7.run(num_objects=N, seed=0, dimensions=(8, 10))
        for row in result.rows:
            assert row["object_fraction"] == pytest.approx(
                row["object_fraction_eq1"], abs=0.05
            )

    def test_alignment_best_near_ten(self):
        result = fig7.run(num_objects=N, seed=0, dimensions=(6, 10, 14))
        distances = {}
        for note in result.notes:
            r = int(note.split(":")[0][2:])
            distances[r] = float(note.split("TV(object, node) = ")[1].split(",")[0])
        assert distances[10] < distances[6]
        assert distances[10] < distances[14]


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8.run(
            num_objects=N,
            seed=0,
            dimensions=(8, 10),
            query_sizes=(1, 2, 3),
            queries_per_size=3,
            recall_points=(0.5, 1.0),
        )

    def test_full_recall_near_2_to_minus_m(self, result):
        for row in result.rows:
            if row["recall"] == 1.0 and row["dimension"] == 10:
                assert row["node_fraction"] <= 2.0 ** -row["query_size"] * 1.3

    def test_cost_monotone_in_recall(self, result):
        series = result.series("query_size", "recall", "node_fraction")
        for points in series.values():
            costs = [cost for _, cost in points]
            # within each (r, m) pair the two recall points alternate;
            # compare pairwise per dimension chunk
        for (r, m), rows in _group_rows(result.rows).items():
            costs = [row["node_fraction"] for row in sorted(rows, key=lambda x: x["recall"])]
            assert all(a <= b + 1e-12 for a, b in zip(costs, costs[1:]))

    def test_more_keywords_cheaper(self, result):
        full = {
            (row["dimension"], row["query_size"]): row["node_fraction"]
            for row in result.rows
            if row["recall"] == 1.0
        }
        assert full[(10, 3)] <= full[(10, 2)] <= full[(10, 1)]


def _group_rows(rows):
    grouped = {}
    for row in rows:
        grouped.setdefault((row["dimension"], row["query_size"]), []).append(row)
    return grouped


class TestFig9:
    def test_cache_collapses_cost(self):
        result = fig9.run(
            num_objects=N,
            seed=0,
            dimensions=(10,),
            recall_rates=(1.0,),
            alphas=(0.0, 1.0),
            num_queries=800,
            pool_size=60,
            baseline_sample=200,
        )
        by_alpha = {row["alpha"]: row for row in result.rows}
        assert by_alpha[1.0]["node_fraction"] < by_alpha[0.0]["node_fraction"] / 3
        assert by_alpha[1.0]["cache_hit_rate"] > 0.5

    def test_lru_policy_also_works(self):
        result = fig9.run(
            num_objects=N,
            seed=0,
            dimensions=(10,),
            recall_rates=(1.0,),
            alphas=(1.0,),
            num_queries=500,
            pool_size=60,
            cache_policy="lru",
            baseline_sample=100,
        )
        assert result.rows[0]["cache_hit_rate"] > 0.5


class TestEq1Experiment:
    def test_analytic_matches_monte_carlo(self):
        result = eq1.run(dimensions=(8, 10), set_sizes=(1, 3, 7), trials=4000)
        for row in result.rows:
            assert row["pmf_max_abs_diff"] < 0.05
            assert row["expected_one_eq2"] == pytest.approx(
                row["expected_one_mc"], abs=0.25
            )


class TestAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation.run(
            num_objects=2_000, seed=0, dimension=8, query_sizes=(1, 2), queries_per_size=2
        )

    def test_single_lookup_operations(self, result):
        for row in result.rows:
            if row["operation"] in ("insert", "pin_search", "delete"):
                assert row["index_requests"] <= 2

    def test_superset_message_bound(self, result):
        for row in result.rows:
            if str(row["operation"]).startswith("superset"):
                routing_slack = 2 * 16
                assert row["messages"] <= row["message_bound_3x_subcube"] + routing_slack

    def test_traversals_agree(self, result):
        for row in result.rows:
            if str(row["operation"]).startswith("superset"):
                assert row["same_object_set"] is True

    def test_parallel_round_bound(self, result):
        for row in result.rows:
            if row["operation"] == "superset[parallel]":
                assert row["rounds"] <= row["round_bound"]


class TestFault:
    def test_hypercube_degrades_gracefully(self):
        result = fault.run(
            num_objects=N,
            seed=0,
            dimension=8,
            num_dht_nodes=64,
            failure_fractions=(0.0, 0.2),
            num_queries=30,
            loss_rates=(),
        )
        rows = {(r["scheme"], r["failure_fraction"]): r for r in result.rows}
        assert rows[("hypercube", 0.0)]["mean_recall"] == pytest.approx(1.0)
        assert rows[("dii", 0.0)]["mean_recall"] == pytest.approx(1.0)
        # Under failures, the hypercube keeps partial recall on most
        # queries; DII loses whole queries.
        assert rows[("hypercube", 0.2)]["mean_recall"] > 0.5
        assert (
            rows[("dii", 0.2)]["blocked_fraction"]
            >= rows[("hypercube", 0.2)]["blocked_fraction"] - 1e-9
        )
        # A strict searcher raises whole queries away; the resilient
        # channel degrades past dead subcubes and keeps strictly more.
        assert rows[("hypercube-resilient", 0.2)]["raised_fraction"] == 0.0
        assert (
            rows[("hypercube-resilient", 0.2)]["mean_recall"]
            > rows[("hypercube-noretry", 0.2)]["mean_recall"]
        )

    def test_transient_loss_retry_sweep(self):
        result = fault.run(
            num_objects=N,
            seed=0,
            dimension=8,
            num_dht_nodes=64,
            failure_fractions=(),
            num_queries=20,
            loss_rates=(0.1,),
            retry_attempts=(1, 3),
        )
        rows = {(r["scheme"], r["failure_fraction"]): r for r in result.rows}
        single = rows[("loss-retry1", 0.1)]
        retried = rows[("loss-retry3", 0.1)]
        assert single["failure_mode"] == "transient"
        # One attempt: any dropped message kills the query.  Three
        # attempts: backoff + re-send recovers nearly everything, at a
        # higher message cost.
        assert retried["mean_recall"] > single["mean_recall"]
        assert retried["mean_recall"] > 0.9
        assert retried["mean_messages"] > single["mean_messages"]
        assert any(note.startswith("rpc.retries=") for note in result.notes)


class TestFaultReplication:
    def test_replication_improves_recall(self):
        result = fault.run(
            num_objects=N,
            seed=0,
            dimension=8,
            num_dht_nodes=64,
            failure_fractions=(0.0, 0.3),
            num_queries=25,
            replicas=2,
            loss_rates=(),
        )
        rows = {(r["scheme"], r["failure_fraction"]): r for r in result.rows}
        plain = rows[("hypercube", 0.3)]["mean_recall"]
        replicated = rows[("hypercube+2x", 0.3)]["mean_recall"]
        assert replicated >= plain
        assert replicated > 0.75


class TestHotspot:
    def test_hypercube_spreads_query_load(self):
        result = hotspot.run(
            num_objects=N,
            seed=0,
            dimension=8,
            num_dht_nodes=64,
            num_queries=120,
            pool_size=80,
        )
        by_scheme = {row["scheme"]: row for row in result.rows}
        dii = by_scheme["dii"]
        hypercube_rows = [
            row for scheme, row in by_scheme.items() if scheme.startswith("hypercube")
        ]
        assert hypercube_rows
        for row in hypercube_rows:
            assert row["gini"] < dii["gini"]
            assert row["max_to_mean"] < dii["max_to_mean"]


class TestDhtComparison:
    def test_substrates_agree_logically(self):
        result = dhtcmp.run(
            num_objects=1_024,
            seed=0,
            dimension=7,
            num_dht_nodes=32,
            num_lookups=50,
            query_sizes=(1, 2),
            queries_per_size=2,
        )
        assert len(result.rows) == 4
        for row in result.rows:
            assert row["matches_reference"] is True

    def test_native_cube_hops_bounded_by_dimension(self):
        result = dhtcmp.run(
            num_objects=512,
            seed=0,
            dimension=6,
            num_dht_nodes=16,
            num_lookups=40,
            substrates=("hypercup",),
            query_sizes=(1,),
            queries_per_size=1,
        )
        (row,) = result.rows
        assert row["max_lookup_hops"] <= 6


class TestBandwidth:
    def test_dii_ships_more_for_multi_keyword(self):
        result = bandwidth.run(
            num_objects=N, seed=0, dimension=8, num_dht_nodes=32,
            query_sizes=(1, 2), queries_per_size=3,
        )
        by_op = {row["operation"]: row for row in result.rows}
        assert by_op["query m=2"]["dii_refs_shipped"] >= by_op["query m=2"][
            "hypercube_refs_shipped"
        ]
        assert by_op["insert k=7"]["hypercube_refs_shipped"] == 1
        assert by_op["insert k=7"]["dii_refs_shipped"] == 7
        assert by_op["insert k=7"]["kss_refs_shipped"] == 28


class TestChurn:
    def test_maintenance_preserves_recall(self):
        result = churn.run(
            num_objects=2_048,
            seed=0,
            dimension=7,
            num_dht_nodes=24,
            epochs=3,
            joins_per_epoch=3,
            leaves_per_epoch=3,
            num_queries=8,
        )
        last_epoch = max(row["epoch"] for row in result.rows)
        final = {
            row["scheme"]: row for row in result.rows if row["epoch"] == last_epoch
        }
        assert final["maintained"]["mean_recall"] == pytest.approx(1.0)
        assert final["maintained"]["indexed_references"] == 2_048
        assert (
            final["no-maintenance"]["indexed_references"]
            < final["maintained"]["indexed_references"]
        )
        assert (
            final["no-maintenance"]["mean_recall"]
            <= final["maintained"]["mean_recall"]
        )


class TestDecomposed:
    def test_tradeoff_shape(self):
        result = decomposed.run(
            num_objects=1_500,
            seed=0,
            flat_dimension=10,
            decompositions=((2, 5),),
            query_sizes=(1, 2),
            queries_per_size=2,
        )
        by_scheme = {row["scheme"]: row for row in result.rows}
        flat = by_scheme["flat-10"]
        split = by_scheme["decomposed-2x5"]
        assert split["mean_visits"] < flat["mean_visits"]
        assert split["storage_multiplier"] > flat["storage_multiplier"]
        assert 0 < split["mean_precision"] <= 1.0
