"""Model-based testing: the distributed index vs an in-memory model.

A hypothesis state machine drives random publish / unpublish / pin /
superset / cumulative operations against the full stack (Chord +
hypercube index) and, in parallel, against a plain dictionary.  Any
divergence — a lost object, a phantom result, a broken exact-set
lookup — fails with the minimal operation sequence that triggers it.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.cumulative import CumulativeSearchSession
from repro.core.index import HypercubeIndex
from repro.core.search import SuperSetSearch
from repro.dht.chord import ChordNetwork
from repro.hypercube.hypercube import Hypercube

KEYWORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]

keyword_sets = st.sets(st.sampled_from(KEYWORDS), min_size=1, max_size=4).map(frozenset)
object_ids = st.integers(min_value=0, max_value=14).map(lambda i: f"obj-{i}")


class IndexModelMachine(RuleBasedStateMachine):
    """Random ops on the real index, mirrored on a dict model."""

    @initialize()
    def setup(self):
        self.ring = ChordNetwork.build(bits=16, num_nodes=12, seed=1234)
        self.index = HypercubeIndex(Hypercube(5), self.ring)
        self.searcher = SuperSetSearch(self.index)
        self.holder = self.ring.any_address()
        self.model: dict[str, frozenset[str]] = {}

    # -- operations -----------------------------------------------------

    @rule(object_id=object_ids, keywords=keyword_sets)
    def publish(self, object_id: str, keywords: frozenset[str]):
        if object_id in self.model:
            return  # already published (one replica per object here)
        self.index.insert(object_id, keywords, self.holder)
        self.model[object_id] = keywords

    @rule(object_id=object_ids)
    def unpublish(self, object_id: str):
        keywords = self.model.pop(object_id, None)
        if keywords is None:
            return
        self.index.delete(object_id, keywords, self.holder)

    @rule(keywords=keyword_sets)
    def pin_search(self, keywords: frozenset[str]):
        expected = sorted(
            oid for oid, kw in self.model.items() if kw == keywords
        )
        result = self.index.pin_search(keywords)
        assert sorted(result.object_ids) == expected

    @rule(keywords=keyword_sets)
    def superset_search(self, keywords: frozenset[str]):
        expected = {oid for oid, kw in self.model.items() if keywords <= kw}
        result = self.searcher.run(keywords)
        assert set(result.object_ids) == expected
        assert result.complete
        # No duplicates, every result's keywords contain the query.
        assert len(result.object_ids) == len(set(result.object_ids))
        for found in result.objects:
            assert keywords <= found.keywords
            assert found.keywords == self.model[found.object_id]

    @rule(keywords=keyword_sets, threshold=st.integers(min_value=1, max_value=5))
    def thresholded_search(self, keywords: frozenset[str], threshold: int):
        expected = {oid for oid, kw in self.model.items() if keywords <= kw}
        result = self.searcher.run(keywords, threshold)
        assert len(result.objects) == min(threshold, len(expected))
        assert set(result.object_ids) <= expected

    @rule(keywords=keyword_sets)
    def cumulative_search(self, keywords: frozenset[str]):
        expected = {oid for oid, kw in self.model.items() if keywords <= kw}
        session = CumulativeSearchSession(self.index, keywords)
        collected: list[str] = []
        while not session.exhausted:
            batch = session.next_batch(2)
            collected.extend(found.object_id for found in batch.objects)
        assert len(collected) == len(set(collected))  # pages never repeat
        assert set(collected) == expected

    # -- global invariants ----------------------------------------------

    @invariant()
    def totals_agree(self):
        if hasattr(self, "index"):
            assert self.index.total_indexed() == len(self.model)

    @invariant()
    def placement_is_canonical(self):
        if not hasattr(self, "index"):
            return
        for address in self.ring.addresses():
            shard = self.index.shard_at(address)
            for namespace, logical in shard.tables:
                if namespace == self.index.namespace:
                    assert self.index.mapping.physical_owner(logical) == address


IndexModelMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestIndexModel = IndexModelMachine.TestCase
