"""Unit and property tests for the durable store (:mod:`repro.store`).

The core guarantee under test: **any prefix of a WAL replays to a
consistent state** — decoding never raises, yields a prefix of the
written records, and a torn tail (a crash mid-append) is detected and
dropped, never misread.  Hypothesis drives the prefix/corruption
properties; concrete tests cover the FileStore lifecycle (recovery,
compaction, manifest atomicity) and the shard/store integration.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import IndexShard
from repro.store import (
    FileStore,
    MemoryStore,
    StoreRecord,
    decode_records,
    encode_record,
    replay,
)
from repro.store.wal import encode_record_generic, entry_records

# -- record strategies ----------------------------------------------------

_KEYWORDS = st.sets(
    st.sampled_from(["jazz", "mp3", "piano", "flac", "modal", "sax"]), min_size=1, max_size=3
).map(lambda s: tuple(sorted(s)))
_OBJECTS = st.sampled_from([f"obj{i}" for i in range(8)])
_LOGICAL = st.integers(min_value=0, max_value=7)
_HOLDERS = st.integers(min_value=0, max_value=99)

_RECORDS = st.one_of(
    st.builds(
        StoreRecord,
        op=st.sampled_from(["put", "remove"]),
        namespace=st.just("main"),
        logical=_LOGICAL,
        keywords=_KEYWORDS,
        object_id=_OBJECTS,
    ),
    st.builds(StoreRecord, op=st.just("drop"), namespace=st.just("main"), logical=_LOGICAL),
    st.builds(
        StoreRecord,
        op=st.sampled_from(["ref_put", "ref_del"]),
        object_id=_OBJECTS,
        holder=_HOLDERS,
    ),
)


class TestWalProperties:
    @given(records=st.lists(_RECORDS, max_size=30), cut=st.integers(min_value=0))
    def test_any_prefix_replays_to_a_consistent_state(self, records, cut):
        blob = b"".join(encode_record(record) for record in records)
        cut = cut % (len(blob) + 1)
        decoded = decode_records(blob[:cut])
        count = len(decoded.records)
        # A prefix of the bytes decodes to a prefix of the records —
        # never a phantom, reordered, or misparsed record.
        assert decoded.records == tuple(records[:count])
        assert decoded.consumed <= cut
        # The clean prefix re-decodes identically with no torn tail, so
        # recovery-then-truncate converges.
        again = decode_records(blob[: decoded.consumed])
        assert again.records == decoded.records
        assert not again.truncated
        # A cut strictly inside a frame is reported as torn.
        assert decoded.truncated == (decoded.consumed != cut)
        # Replaying the decoded records equals replaying the true prefix.
        assert replay(decoded.records) == replay(records[:count])

    @given(records=st.lists(_RECORDS, min_size=1, max_size=20), flip=st.integers(min_value=0))
    def test_corruption_never_raises_and_never_fabricates(self, records, flip):
        blob = bytearray(b"".join(encode_record(record) for record in records))
        position = flip % len(blob)
        blob[position] ^= 0xFF
        decoded = decode_records(bytes(blob))
        # Whatever survives is a prefix of what was written.
        assert decoded.records == tuple(records[: len(decoded.records)])

    @given(
        record=st.one_of(
            st.builds(
                StoreRecord,
                op=st.sampled_from(["put", "remove"]),
                namespace=st.text(max_size=10),
                logical=st.integers(min_value=0, max_value=2**20),
                keywords=st.lists(st.text(max_size=8), max_size=4).map(tuple),
                object_id=st.text(max_size=12),
            ),
            st.builds(
                StoreRecord,
                op=st.just("entry"),
                namespace=st.text(max_size=10),
                logical=st.integers(min_value=0, max_value=2**20),
                keywords=st.lists(st.text(max_size=8), max_size=4).map(tuple),
                object_ids=st.lists(st.text(max_size=8), max_size=4).map(tuple),
            ),
            st.builds(StoreRecord, op=st.just("drop"), namespace=st.text(max_size=10)),
            st.builds(
                StoreRecord,
                op=st.sampled_from(["ref_put", "ref_del"]),
                object_id=st.text(max_size=12),
                holder=st.integers(min_value=0, max_value=2**32),
            ),
        )
    )
    def test_fast_encoder_matches_reference(self, record):
        # encode_record hand-assembles the JSON; encode_record_generic
        # is the executable definition of the format.  Same bytes, for
        # any field content (unicode, quotes, escapes included).
        assert encode_record(record) == encode_record_generic(record)

    @given(records=st.lists(_RECORDS, max_size=30))
    def test_roundtrip_is_lossless(self, records):
        blob = b"".join(encode_record(record) for record in records)
        decoded = decode_records(blob)
        assert decoded.records == tuple(records)
        assert not decoded.truncated
        assert decoded.consumed == len(blob)

    @settings(max_examples=25)
    @given(records=st.lists(_RECORDS, min_size=1, max_size=15), cut=st.integers(min_value=0))
    def test_filestore_recovers_any_truncation(self, records, cut):
        """Truncate the WAL file at an arbitrary byte (the on-disk image
        a crash leaves) and recover: the state equals replaying the
        decodable prefix, and the torn tail is gone afterwards."""
        with tempfile.TemporaryDirectory() as directory:
            store = FileStore(directory)
            store.recover()
            for record in records:
                store._append(record)
            store.abort()
            wal = Path(directory) / "wal.log"
            size = wal.stat().st_size
            cut = cut % (size + 1)
            with open(wal, "r+b") as handle:
                handle.truncate(cut)
            survivor = FileStore(directory)
            state = survivor.recover()
            expected = decode_records(wal.read_bytes())
            tables, refs = replay(expected.records)
            assert state.tables == tables
            assert state.refs == refs
            survivor.close()
            clean = FileStore(directory).recover()
            assert not clean.truncated
            assert (clean.tables, clean.refs) == (tables, refs)


class TestFileStore:
    def test_recover_empty_directory(self, tmp_path):
        state = FileStore(tmp_path / "node").recover()
        assert state.tables == {} and state.refs == {}
        assert state.records == 0 and not state.truncated

    def test_mutations_survive_abort(self, tmp_path):
        store = FileStore(tmp_path)
        store.record_put("main", 5, ["a", "b"], "obj1")
        store.record_put("main", 5, ["a", "b"], "obj2")
        store.record_remove("main", 5, ["a", "b"], "obj1")
        store.record_ref_put("obj2", 7)
        store.abort()  # crash analog: no close-time fsync
        state = FileStore(tmp_path).recover()
        assert state.tables == {("main", 5): {frozenset({"a", "b"}): {"obj2"}}}
        assert state.refs == {"obj2": {7}}
        assert state.wal_records == 4

    def test_torn_tail_is_dropped_and_truncated(self, tmp_path):
        store = FileStore(tmp_path)
        store.record_put("main", 1, ["x"], "obj")
        store.close()
        frame = encode_record(StoreRecord(op="put", namespace="main", logical=2,
                                          keywords=("y",), object_id="torn"))
        with open(store.wal_path, "ab") as handle:
            handle.write(frame[:-3])  # the partial append a crash leaves
        recovered = FileStore(tmp_path)
        state = recovered.recover()
        assert state.truncated
        assert list(state.tables) == [("main", 1)]
        assert any("torn WAL tail" in note for note in state.notes)
        recovered.close()
        assert not FileStore(tmp_path).recover().truncated

    def test_compaction_folds_wal_into_snapshot(self, tmp_path):
        store = FileStore(tmp_path)
        tables = {("main", 3): {frozenset({"k"}): {"obj1", "obj2"}}}
        refs = {"obj1": {4}}
        store.bind(tables=lambda: tables, refs=lambda: refs)
        store.record_put("main", 3, ["k"], "obj1")
        store.record_put("main", 3, ["k"], "obj2")
        store.record_ref_put("obj1", 4)
        written = store.compact()
        assert written == 2  # one entry + one ref
        assert store.wal_path.stat().st_size == 0
        assert store.snapshot_path(1).exists()
        store.record_put("main", 9, ["z"], "obj3")
        store.close()
        state = FileStore(tmp_path).recover()
        assert state.snapshot_records == 2 and state.wal_records == 1
        assert state.tables[("main", 3)] == {frozenset({"k"}): {"obj1", "obj2"}}
        assert state.tables[("main", 9)] == {frozenset({"z"}): {"obj3"}}
        assert state.refs == {"obj1": {4}}

    def test_second_compaction_replaces_snapshot(self, tmp_path):
        store = FileStore(tmp_path)
        tables = {("main", 1): {frozenset({"a"}): {"x"}}}
        store.bind(tables=lambda: tables, refs=dict)
        store.compact()
        tables[("main", 1)][frozenset({"a"})].add("y")
        store.compact()
        snapshots = sorted(path.name for path in Path(tmp_path).glob("snapshot-*.snap"))
        assert snapshots == ["snapshot-00000002.snap"]
        state = FileStore(tmp_path).recover()
        assert state.tables == {("main", 1): {frozenset({"a"}): {"x", "y"}}}

    def test_auto_compaction_after_threshold(self, tmp_path):
        store = FileStore(tmp_path, compact_every=5)
        tables = {}
        store.bind(tables=lambda: tables, refs=dict)
        shard_key = ("main", 0)
        for i in range(6):
            tables.setdefault(shard_key, {}).setdefault(frozenset({"k"}), set()).add(f"o{i}")
            store.record_put("main", 0, ["k"], f"o{i}")
            store.maybe_compact()
        assert store.snapshot_path(1).exists()
        # Post-snapshot WAL only holds appends since the threshold hit.
        assert len(decode_records(store.wal_path.read_bytes()).records) == 1

    def test_compact_without_suppliers_is_a_noop(self, tmp_path):
        store = FileStore(tmp_path)
        store.record_put("main", 0, ["k"], "o")
        assert store.compact() == 0
        assert not store.snapshot_path(1).exists()

    def test_append_after_close_raises(self, tmp_path):
        store = FileStore(tmp_path)
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.record_put("main", 0, ["k"], "o")

    def test_metrics_reported(self, tmp_path):
        from repro.sim.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        store = FileStore(tmp_path, metrics=metrics)
        store.record_put("main", 0, ["k"], "o")
        store.bind(tables=lambda: {("main", 0): {frozenset({"k"}): {"o"}}}, refs=dict)
        store.compact()
        store.close()
        assert metrics.counter("store.wal_appends") == 1
        assert metrics.counter("store.wal_bytes") > 0
        assert metrics.counter("store.snapshots") == 1
        assert metrics.counter("store.recoveries") == 1
        assert metrics.summary("store.recovery_seconds").count == 1
        assert metrics.summary("store.snapshot_bytes").count == 1


class TestEntryRecords:
    def test_deterministic_and_replayable(self):
        tables = {
            ("main", 2): {frozenset({"b", "a"}): {"y", "x"}, frozenset({"c"}): {"z"}},
            ("alt", 1): {frozenset({"q"}): {"w"}},
        }
        refs = {"x": {3, 1}, "w": {2}}
        records = entry_records(tables, refs)
        assert records == entry_records(tables, refs)
        assert replay(records) == (tables, refs)


class TestShardIntegration:
    def test_default_store_is_memory_and_counts(self):
        shard = IndexShard()
        assert isinstance(shard.store, MemoryStore)
        shard.put(("main", 0), frozenset({"k"}), "obj")
        shard.remove(("main", 0), frozenset({"k"}), "obj")
        assert shard.store.appends == 2

    def test_shard_state_survives_restart(self, tmp_path):
        shard = IndexShard(store=FileStore(tmp_path))
        shard.put(("main", 3), frozenset({"jazz", "mp3"}), "take-five")
        shard.put(("main", 3), frozenset({"jazz"}), "kind-of-blue")
        shard.put(("main", 5), frozenset({"piano"}), "moonlight")
        shard.remove(("main", 3), frozenset({"jazz"}), "kind-of-blue")
        shard.store.abort()
        reborn = IndexShard(store=FileStore(tmp_path))
        assert reborn.tables == {
            ("main", 3): {frozenset({"jazz", "mp3"}): {"take-five"}},
            ("main", 5): {frozenset({"piano"}): {"moonlight"}},
        }
        assert reborn.pin(("main", 3), frozenset({"jazz", "mp3"})) == ("take-five",)

    def test_drop_table_is_durable(self, tmp_path):
        shard = IndexShard(store=FileStore(tmp_path))
        shard.put(("main", 3), frozenset({"jazz"}), "obj")
        shard.drop_table(("main", 3))
        shard.store.abort()
        reborn = IndexShard(store=FileStore(tmp_path))
        assert reborn.tables == {}

    def test_snapshot_records_stream_matches_entries(self, tmp_path):
        shard = IndexShard()
        shard.put(("main", 1), frozenset({"b", "a"}), "y")
        shard.put(("main", 1), frozenset({"b", "a"}), "x")
        shard.put(("main", 1), frozenset({"c"}), "z")
        assert shard.snapshot_records(("main", 1)) == [
            (["c"], ["z"]),
            (["a", "b"], ["x", "y"]),
        ]
