#!/usr/bin/env python
"""Load smoke: the multi-process closed-loop generator against a live cluster.

The scenario CI runs end-to-end:

1. build a 16-node loopback-TCP cluster with admission control enabled
   and publish a corpus whose query answers are known;
2. drive it for 30 seconds with the closed-loop generator — two
   spawned worker processes, each with its own socket pool
   (:class:`~repro.client.DaemonFleetClient`) and four threads, cycling
   a fixed query mix;
3. assert the run produced nonzero goodput, zero failed queries, and a
   bounded p99 (closed loop at this concurrency sits below the knee, so
   admission must stay invisible: nothing shed, nothing degraded);
4. spot-check recall: every query in the mix, re-run after the storm
   through a fresh client, returns exactly the same objects a same-seed
   simulator computes — sustained load must not cost recall.

Exits non-zero on any violation.  Runs in well under two minutes.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.client import connect  # noqa: E402
from repro.core.config import ServiceConfig  # noqa: E402
from repro.core.service import KeywordSearchService  # noqa: E402
from repro.load import MultiprocessLoad, WorkerSpec  # noqa: E402
from repro.net.admission import AdmissionPolicy  # noqa: E402
from repro.net.cluster import LocalCluster  # noqa: E402
from repro.sim.resilience import RetryPolicy  # noqa: E402

CONFIG = ServiceConfig(
    dimension=6,
    num_dht_nodes=16,
    seed=17,
    resilience=RetryPolicy(max_attempts=2, base_delay=8.0, jitter=0.0),
)
ADMISSION = AdmissionPolicy(max_inflight=32, retry_after=8.0)
DURATION_S = 30.0
PROCESSES = 2
THREADS = 4
P99_BOUND_MS = 1_000.0

QUERIES = (
    frozenset({"common"}),
    frozenset({"common", "tag"}),
    frozenset({"common", "tag", "genre"}),
)


def corpus() -> list[tuple[str, set[str]]]:
    items = []
    for number in range(96):
        keywords = {"common", f"x{number % 7}", f"y{number % 5}"}
        if number % 2 == 0:
            keywords.add("tag")
        if number % 3 == 0:
            keywords.add("genre")
        items.append((f"obj-{number}", keywords))
    return items


def main() -> int:
    simulator = KeywordSearchService.create(CONFIG)
    for object_id, keywords in corpus():
        simulator.publish(object_id, keywords)
    expected = {query: set(simulator.search(query).results()) for query in QUERIES}
    if not all(expected.values()):
        print("FAIL: corpus gives an empty answer for a smoke query")
        return 1

    failures = 0
    with LocalCluster(CONFIG, admission=ADMISSION) as cluster:
        for object_id, keywords in corpus():
            cluster.service.publish(object_id, keywords)

        spec = WorkerSpec(
            CONFIG,
            dict(cluster.endpoints),
            mode="closed",
            duration_s=DURATION_S,
            threads=THREADS,
            queries=QUERIES,
        )
        report = MultiprocessLoad(spec.fleet(PROCESSES)).run()
        shed = cluster.transport.metrics.counter("net.shed_requests")

        checks = {
            "nonzero goodput": report.goodput > 0,
            "no failed queries": report.errors == 0,
            "sub-knee: nothing shed by admission": report.busy == 0 and shed == 0,
            f"p99 bounded (< {P99_BOUND_MS:.0f} ms)": report.p99_ms < P99_BOUND_MS,
        }
        for label, passed in checks.items():
            if not passed:
                print(f"FAIL: {label}")
                failures += 1
        print(
            f"closed loop: {report.ok} ok / {report.offered} offered in "
            f"{report.elapsed_s:.1f}s ({report.goodput:.0f} qps), "
            f"p50 {report.p50_ms:.1f}ms p99 {report.p99_ms:.1f}ms, "
            f"busy {report.busy}, errors {report.errors}, shed {shed}"
        )

        # Recall spot-check through a fresh fleet client: the storm must
        # not have cost a single object.
        with connect(CONFIG, peers=cluster.endpoints) as client:
            for query in QUERIES:
                result = client.search(query)
                got = set(result.results())
                if got != expected[query] or result.degraded:
                    print(
                        f"FAIL: recall loss for {sorted(query)}: "
                        f"{len(got)}/{len(expected[query])} objects"
                        f"{' (degraded)' if result.degraded else ''}"
                    )
                    failures += 1
                else:
                    print(f"recall {sorted(query)}: {len(got)} objects, exact")

    if failures:
        print(f"{failures} check(s) failed")
        return 1
    print("load smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
