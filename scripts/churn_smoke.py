#!/usr/bin/env python
"""Churn smoke: live join/leave/crash under a continuous query stream.

The scenario CI runs end-to-end:

1. build a 16-node loopback-TCP cluster with dynamic membership and a
   2-way replicated index, and publish a corpus whose query answers are
   known;
2. drive it with the multi-process closed-loop generator (two spawned
   workers, own socket pools) while a churn driver kills two nodes and
   joins two brand-new ones mid-stream — one crash noticed organically
   by the gossip failure detector, one declared by the operator;
3. assert the stream saw **zero client-visible errors** (degraded
   visits are allowed — that is the replica fallback doing its job) and
   that the membership layer really detected, repaired, and transferred
   (memb.* counters);
4. after the churn settles, a fresh fleet client refreshes its view
   from the live peer book and must get **exactly** the result sets an
   uninterrupted same-seed simulator computes — recall converges to
   100%, not "most of it back".

Exits non-zero on any violation.  Runs in well under three minutes.
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.client import connect  # noqa: E402
from repro.core.config import ServiceConfig  # noqa: E402
from repro.core.service import KeywordSearchService  # noqa: E402
from repro.load import MultiprocessLoad, WorkerSpec  # noqa: E402
from repro.membership import MembershipPolicy  # noqa: E402
from repro.net.cluster import LocalCluster  # noqa: E402
from repro.sim.resilience import RetryPolicy  # noqa: E402

CONFIG = ServiceConfig(
    dimension=6,
    num_dht_nodes=16,
    seed=17,
    index_replicas=2,
    resilience=RetryPolicy(max_attempts=2, base_delay=8.0, jitter=0.0),
)
POLICY = MembershipPolicy(gossip_interval=0.1, fanout=3, suspicion_threshold=3)
DURATION_S = 30.0
PROCESSES = 2
THREADS = 4

QUERIES = (
    frozenset({"common"}),
    frozenset({"common", "tag"}),
    frozenset({"common", "tag", "genre"}),
)


def corpus() -> list[tuple[str, set[str]]]:
    items = []
    for number in range(96):
        keywords = {"common", f"x{number % 7}", f"y{number % 5}"}
        if number % 2 == 0:
            keywords.add("tag")
        if number % 3 == 0:
            keywords.add("genre")
        items.append((f"obj-{number}", keywords))
    return items


def safe_victims(service) -> list[int]:
    """Addresses whose loss is fully repairable: every non-empty table
    they host has a surviving replica copy on a different address.  A
    logical node whose k=2 copies co-locate is unrecoverable when that
    address dies — a replication-factor fact the smoke must not trip
    over, so victims are picked to avoid it."""
    victims = []
    for victim in service.dolr.addresses():
        safe, loaded = True, False
        for index in service.indexes:
            donors = [d for d in service.indexes if d is not index]
            for logical in index.mapping.logical_nodes_of(victim):
                rows = index.shard_at(victim).snapshot_records((index.namespace, logical))
                if not rows:
                    continue
                loaded = True
                if not donors or not any(
                    d.mapping.physical_owner(logical) != victim for d in donors
                ):
                    safe = False
        if safe and loaded:
            victims.append(victim)
    return victims


def widest_gap_address(addresses: list[int]) -> int:
    """A brand-new address in the middle of the widest arc."""
    ordered = sorted(addresses)
    width, start = max((b - a, a) for a, b in zip(ordered, ordered[1:]))
    return start + width // 2


class ChurnDriver(threading.Thread):
    """Kill two, join two, while the query stream runs."""

    def __init__(self, cluster: LocalCluster):
        super().__init__(name="churn-driver", daemon=True)
        self.cluster = cluster
        self.error: BaseException | None = None
        self.events: list[str] = []

    def _crash(self, victim: int, *, declared: bool) -> None:
        if declared:
            restored = self.cluster.declare_crashed(victim)
            self.events.append(f"declared crash of {victim} (restored {restored} refs)")
            return
        self.cluster.crash_node(victim)
        detected = self.cluster.await_membership(
            lambda book: (record := book.get(victim)) is not None
            and record.status == "dead",
            timeout=15.0,
        )
        if not detected:
            raise RuntimeError(f"failure detector never declared {victim} dead")
        self.events.append(f"organic crash of {victim} detected by gossip")

    def _join(self) -> int:
        joiner = widest_gap_address(self.cluster.addresses())
        moved = self.cluster.join_node(joiner)
        self.events.append(f"joined {joiner} ({moved} refs handed over)")
        return joiner

    def run(self) -> None:
        try:
            time.sleep(4.0)
            victims = safe_victims(self.cluster.service)
            if not victims:
                raise RuntimeError("no fully-repairable victim to kill")
            self._crash(victims[0], declared=False)
            time.sleep(3.0)
            self._join()
            time.sleep(3.0)
            # Placement moved: recompute which survivor is safe to lose.
            victims = [v for v in safe_victims(self.cluster.service)]
            if not victims:
                raise RuntimeError("no repairable second victim after first round")
            self._crash(victims[0], declared=True)
            time.sleep(3.0)
            self._join()
        except BaseException as error:  # noqa: BLE001 - surfaced by main()
            self.error = error


def main() -> int:
    simulator = KeywordSearchService.create(CONFIG)
    for object_id, keywords in corpus():
        simulator.publish(object_id, keywords)
    expected = {query: set(simulator.search(query).results()) for query in QUERIES}
    if not all(expected.values()):
        print("FAIL: corpus gives an empty answer for a smoke query")
        return 1

    failures = 0
    with LocalCluster(CONFIG, membership=POLICY) as cluster:
        for object_id, keywords in corpus():
            cluster.service.publish(object_id, keywords)

        driver = ChurnDriver(cluster)
        driver.start()
        spec = WorkerSpec(
            CONFIG,
            dict(cluster.endpoints),
            mode="closed",
            duration_s=DURATION_S,
            threads=THREADS,
            queries=QUERIES,
        )
        report = MultiprocessLoad(spec.fleet(PROCESSES)).run()
        driver.join(timeout=30.0)

        if driver.error is not None:
            print(f"FAIL: churn driver died: {driver.error!r}")
            failures += 1
        for event in driver.events:
            print(f"churn: {event}")

        metrics = cluster.transport.metrics
        checks = {
            "stream saw zero client-visible errors": report.errors == 0,
            "stream produced goodput throughout": report.ok > 0,
            "two deaths recorded": metrics.counter("memb.deaths_declared") == 2,
            "two joins recorded": metrics.counter("memb.joins_applied") == 2,
            "crash repair restored references": metrics.counter("memb.repaired_refs") > 0,
            "join handover moved references": metrics.counter("memb.transferred_refs") > 0,
            "no node wrongly declared itself dead": metrics.counter(
                "memb.false_deaths_refuted"
            )
            == 0,
            "no reconcile errors": metrics.counter("memb.reconcile_errors") == 0,
            "gossip loop never crashed": metrics.counter("memb.tick_errors") == 0,
        }
        for label, passed in checks.items():
            if not passed:
                print(f"FAIL: {label}")
                failures += 1
        print(
            f"closed loop over churn: {report.ok} ok / {report.offered} offered in "
            f"{report.elapsed_s:.1f}s ({report.goodput:.0f} qps), "
            f"errors {report.errors}, busy {report.busy}, "
            f"p50 {report.p50_ms:.1f}ms p99 {report.p99_ms:.1f}ms"
        )

        # Post-convergence recall: a fresh client, told only the original
        # (seed, config) spec plus the live endpoints, refreshes its view
        # from the peer book and must match the uninterrupted simulator
        # exactly — with nothing degraded, since every owner is alive.
        with connect(CONFIG, peers=cluster.endpoints) as client:
            if not client.refresh_membership():
                print("FAIL: no daemon answered the membership refresh")
                failures += 1
            for query in QUERIES:
                result = client.search(query)
                got = set(result.results())
                if got != expected[query] or result.degraded:
                    print(
                        f"FAIL: recall after churn for {sorted(query)}: "
                        f"{len(got)}/{len(expected[query])} objects"
                        f"{' (degraded)' if result.degraded else ''}"
                    )
                    failures += 1
                else:
                    print(f"recall {sorted(query)}: {len(got)} objects, exact")

    if failures:
        print(f"{failures} check(s) failed")
        return 1
    print("churn smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
