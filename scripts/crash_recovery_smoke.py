#!/usr/bin/env python
"""Crash-recovery smoke: SIGKILL a durable node, restart it, verify parity.

The scenario CI runs end-to-end, across real process boundaries:

1. build a 16-node deployment where 15 nodes live in this process (one
   ``AsyncioTransport`` serving 15 loopback sockets, default binary
   codec) and one **victim** node runs as a separate ``python -m repro
   node serve`` process with ``--data-dir`` (WAL + snapshot
   persistence), ``--stats-port``, and ``--codec json`` — a v1-pinned
   daemon among v2-capable peers, so every cross-process RPC exercises
   the mixed-codec negotiation path;
2. publish half the corpus through the cluster — the victim's shard and
   reference table land in its WAL as version-1 (JSON) records;
3. ``SIGKILL`` the victim mid-workload (no flush, no goodbye);
4. restart it from the same ``--data-dir`` on the same port under the
   *default binary codec* — the rolling-upgrade restart: recovery must
   replay the JSON-era WAL, and new appends land as version-2 records
   in the same file — wait for ``/healthz``, and check its metrics
   report a recovery;
5. publish the other half, then run superset queries from a survivor
   and compare every result set against a same-seed simulator that
   never crashed — byte-for-byte parity, 100% recall;
6. resolve a set of keyword prefixes through the distributed keyword
   directory (docs/protocol.md §17) and compare matched keywords and
   result sets against the uninterrupted simulator — the victim's trie
   rows must come back from its WAL, and the second half's trie edge
   splits must have landed on the *recovered* structure;
7. scan the victim's WAL files and require **both** record versions on
   disk — proof the mixed-codec file the upgrade leaves behind is what
   recovery actually replayed;
8. stop the victim with SIGTERM (the graceful path) and exit.

Exits non-zero on any mismatch.  Runs in well under a minute.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import ServiceConfig  # noqa: E402
from repro.core.service import KeywordSearchService  # noqa: E402
from repro.net.aio import AsyncioTransport  # noqa: E402
from repro.net.node import cluster_addresses  # noqa: E402
from repro.workload.corpus import SyntheticCorpus  # noqa: E402


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def wait_for_health(port: int, deadline: float) -> None:
    url = f"http://127.0.0.1:{port}/healthz"
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url, timeout=1) as response:
                if response.status == 200:
                    return
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.2)
    raise SystemExit(f"victim never became healthy on {url}")


def fetch_metrics(port: int) -> dict:
    url = f"http://127.0.0.1:{port}/metrics.json"
    with urllib.request.urlopen(url, timeout=5) as response:
        return json.loads(response.read().decode("utf-8"))


def wal_record_versions(data_dir: Path) -> set[int]:
    """Every record version byte present across the WAL files under
    ``data_dir`` — frame walk only, no payload decoding."""
    versions: set[int] = set()
    for wal_path in data_dir.rglob("wal.log"):
        data = wal_path.read_bytes()
        position = 0
        while position + 8 < len(data):
            length = int.from_bytes(data[position : position + 4], "big")
            if length == 0 or position + 8 + length > len(data):
                break  # torn tail
            versions.add(data[position + 8])
            position += 8 + length
    return versions


def launch_victim(
    config: ServiceConfig,
    victim: int,
    port: int,
    stats_port: int,
    data_dir: Path,
    peers: dict[int, tuple[str, int]],
    codec: str = "binary",
) -> subprocess.Popen:
    command = [
        sys.executable, "-m", "repro", "node", "serve",
        "--dimension", str(config.dimension),
        "--nodes", str(config.num_dht_nodes),
        "--seed", str(config.seed),
        "--address", str(victim),
        "--port", str(port),
        "--stats-port", str(stats_port),
        "--data-dir", str(data_dir),
        "--prefix-directory",
        "--codec", codec,
    ]
    for address, (host, peer_port) in peers.items():
        command += ["--peer", f"{address}={host}:{peer_port}"]
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.Popen(
        command, cwd=REPO_ROOT, env=environment,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dimension", type=int, default=6)
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--objects", type=int, default=96)
    parser.add_argument("--queries", type=int, default=24)
    parser.add_argument("--timeout", type=float, default=30.0, help="health-wait seconds")
    arguments = parser.parse_args()

    config = ServiceConfig(
        dimension=arguments.dimension,
        num_dht_nodes=arguments.nodes,
        seed=arguments.seed,
        prefix_directory=True,
    )
    corpus = SyntheticCorpus.generate(num_objects=arguments.objects, seed=arguments.seed)
    items = [(record.object_id, record.keywords) for record in corpus.records]
    half = len(items) // 2

    # The uninterrupted reference: a simulator with the same seed and the
    # same publishes — deterministic-deployment parity is the invariant.
    baseline = KeywordSearchService.create(config)
    holder = baseline.dolr.addresses()[0]
    for object_id, keywords in items:
        baseline.publish(object_id, keywords, holder=holder)
    queries = sorted({frozenset(list(kw)[:1]) for _, kw in items[: arguments.queries]},
                     key=sorted)
    expected = {
        tuple(sorted(query)): sorted(baseline.superset_search(query).results())
        for query in queries
    }
    # Prefixes of the hottest keywords: what the directory must answer
    # identically once the victim's trie rows are back from the WAL.
    frequencies = corpus.keyword_frequencies()
    hot = sorted(frequencies, key=lambda word: (-frequencies[word], word))[:8]
    prefixes = sorted({word[:2] for word in hot})
    expected_prefix = {
        prefix: (
            sorted(baseline.directory.resolve(prefix).keywords),
            sorted(baseline.prefix_search(prefix).results()),
        )
        for prefix in prefixes
    }

    # The victim: the node carrying the most index entries, so recovery
    # demonstrably matters.
    loads = baseline.index.load_by_physical_node()
    addresses = cluster_addresses(config)
    victim = max(addresses, key=lambda address: loads.get(address, 0))
    print(f"victim {victim} carries {loads[victim]} of {sum(loads.values())} entries")

    victim_port = free_port()
    stats_port = free_port()
    transport = AsyncioTransport(
        host="127.0.0.1",
        serve_addresses=set(addresses) - {victim},
        peers={victim: ("127.0.0.1", victim_port)},
    )
    process = None
    exit_code = 1
    try:
        service = KeywordSearchService.create(config, network=transport)
        peers = dict(transport.endpoints)
        with tempfile.TemporaryDirectory(prefix="crash-smoke-") as data_dir:
            data = Path(data_dir)
            process = launch_victim(
                config, victim, victim_port, stats_port, data, peers, codec="json"
            )
            wait_for_health(stats_port, time.monotonic() + arguments.timeout)
            print(
                f"victim serving on :{victim_port} (codec json, peers binary), "
                f"stats on :{stats_port}"
            )

            for object_id, keywords in items[:half]:
                service.publish(object_id, keywords, holder=holder)
            print(f"published {half} objects; killing victim with SIGKILL")

            process.send_signal(signal.SIGKILL)
            process.wait(timeout=10)
            process = launch_victim(
                config, victim, victim_port, stats_port, data, peers, codec="binary"
            )
            wait_for_health(stats_port, time.monotonic() + arguments.timeout)
            counters = fetch_metrics(stats_port).get("counters", {})
            recovered = counters.get("store.recovered_records", 0)
            if counters.get("store.recoveries", 0) < 1:
                print("FAIL: restarted victim reports no store recovery")
                return 1
            print(
                f"victim restarted under codec binary; "
                f"recovered {recovered} records from its JSON-era WAL"
            )

            for object_id, keywords in items[half:]:
                service.publish(object_id, keywords, holder=holder)

            origin = next(address for address in addresses if address != victim)
            mismatches = 0
            for query in queries:
                got = sorted(service.superset_search(query, origin=origin).results())
                want = expected[tuple(sorted(query))]
                if got != want:
                    mismatches += 1
                    print(f"MISMATCH {sorted(query)}: {got} != {want}")
            if mismatches:
                print(f"FAIL: {mismatches}/{len(queries)} queries diverged after crash")
                return 1
            print(f"all {len(queries)} superset queries match the uninterrupted run")

            for prefix in prefixes:
                want_keywords, want_objects = expected_prefix[prefix]
                resolution = service.directory.resolve(prefix, origin=origin)
                result = service.prefix_search(prefix, origin=origin)
                if (
                    sorted(resolution.keywords) != want_keywords
                    or sorted(result.results()) != want_objects
                ):
                    mismatches += 1
                    print(
                        f"MISMATCH prefix {prefix!r}: "
                        f"{sorted(resolution.keywords)} != {want_keywords} or "
                        f"{sorted(result.results())} != {want_objects}"
                    )
            if mismatches:
                print(f"FAIL: {mismatches}/{len(prefixes)} prefix queries diverged")
                return 1
            print(f"all {len(prefixes)} prefix queries resolve identically after recovery")

            versions = wal_record_versions(data)
            if not {1, 2} <= versions:
                print(
                    f"FAIL: expected mixed WAL record versions {{1, 2}} on disk, "
                    f"found {sorted(versions)}"
                )
                return 1
            print(f"victim WAL holds mixed record versions {sorted(versions)}")

            process.send_signal(signal.SIGTERM)  # the graceful path
            try:
                process.wait(timeout=15)
                print("victim stopped cleanly on SIGTERM")
            except subprocess.TimeoutExpired:
                print("FAIL: victim ignored SIGTERM")
                return 1
            exit_code = 0
            process = None
    finally:
        if process is not None:
            process.kill()
            process.wait(timeout=10)
        transport.close()
    print("crash-recovery smoke: OK")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
