#!/usr/bin/env python
"""Cache-coherence smoke: no stale reads under a concurrent write load.

The scenario CI runs end-to-end:

1. build a 16-node loopback-TCP cluster with the cooperative SBT-path
   cache enabled (docs/protocol.md §16) and publish a synthetic corpus;
2. replay a Zipf-skewed query stream (the Figure 9 shape: a small pool
   dominated by its head) while interleaving inserts and deletes that
   land under the popular queries — every write must invalidate or
   patch cached results before the next query reads them;
3. assert **zero stale reads**: each result is compared against a
   posting-list oracle maintained in lockstep with the writes;
4. assert the caches actually worked for their keep — the stream saw
   root-cache hits, the coherence protocol sent invalidations, and a
   final pass over every distinct query matches a fresh uncached walk
   exactly (recall parity).

Exits non-zero on any violation.  Runs in well under two minutes.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import ServiceConfig  # noqa: E402
from repro.experiments.harness import default_corpus  # noqa: E402
from repro.net.cluster import LocalCluster  # noqa: E402
from repro.workload.queries import QueryLogGenerator  # noqa: E402

CONFIG = ServiceConfig(
    dimension=6,
    num_dht_nodes=16,
    seed=23,
    cache_capacity=8,
    cooperative_cache=True,
)
NUM_OBJECTS = 512
POOL_SIZE = 50
STREAM_LENGTH = 600
WRITE_EVERY = 5


def intersect(postings: dict, keywords) -> set:
    sets = sorted((postings.get(k, set()) for k in keywords), key=len)
    result = set(sets[0]) if sets else set()
    for other in sets[1:]:
        result &= other
    return result


def main() -> int:
    failures = 0
    corpus = default_corpus(NUM_OBJECTS, CONFIG.seed)
    stream = QueryLogGenerator(
        corpus, pool_size=POOL_SIZE, seed=CONFIG.seed + 1
    ).generate(STREAM_LENGTH)

    with LocalCluster(CONFIG) as cluster:
        service = cluster.service
        for record in corpus.records:
            service.publish(record.object_id, record.keywords)
        postings = {k: set(v) for k, v in corpus.inverted_index().items()}

        stale = writes = hits = 0
        live_churn: list[tuple[str, frozenset, int]] = []
        for number, query in enumerate(stream):
            if number and number % WRITE_EVERY == 0:
                if writes % 2 == 0 or not live_churn:
                    template = corpus.records[writes % len(corpus.records)]
                    object_id = f"churn-{writes}"
                    published = service.publish(object_id, template.keywords)
                    live_churn.append(
                        (object_id, published.keywords, published.holder)
                    )
                    for keyword in published.keywords:
                        postings.setdefault(keyword, set()).add(object_id)
                else:
                    object_id, keywords, holder = live_churn.pop(0)
                    service.unpublish(object_id, holder=holder)
                    for keyword in keywords:
                        postings[keyword].discard(object_id)
                writes += 1
            result = service.superset_search(query.keywords, use_cache=True)
            hits += result.cache_hit
            expected = intersect(postings, query.keywords)
            if set(result.object_ids) != expected:
                stale += 1
                if stale <= 3:
                    print(
                        f"FAIL: stale read for {sorted(query.keywords)}: "
                        f"got {len(result.object_ids)}, expected {len(expected)}"
                    )

        metrics = cluster.transport.metrics
        invalidations = metrics.counter("cache.invalidations")
        invalidate_rpcs = metrics.counter("cache.invalidate_rpcs")
        print(
            f"stream: {len(stream)} queries, {writes} writes, {hits} root hits, "
            f"{invalidations} entries invalidated over {invalidate_rpcs} RPCs, "
            f"{stale} stale reads"
        )
        if stale:
            failures += 1
        if hits == 0:
            print("FAIL: the query stream never hit a cache")
            failures += 1
        if invalidate_rpcs == 0:
            print("FAIL: the write stream never sent a coherence invalidation")
            failures += 1

        # Recall parity: after all that churn, cached answers for every
        # distinct query must equal a fresh uncached walk, exactly.
        mismatches = 0
        for keywords in sorted({q.keywords for q in stream}, key=sorted):
            cached = service.superset_search(keywords, use_cache=True)
            fresh = service.superset_search(keywords, use_cache=False)
            if set(cached.object_ids) != set(fresh.object_ids):
                mismatches += 1
                if mismatches <= 3:
                    print(f"FAIL: cached vs fresh mismatch for {sorted(keywords)}")
        if mismatches:
            failures += 1
        else:
            print(f"recall parity: {len({q.keywords for q in stream})} queries exact")

    if failures:
        print(f"{failures} check(s) failed")
        return 1
    print("cache coherence smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
