#!/usr/bin/env python
"""Concurrency smoke: the batched PARALLEL traversal over real sockets.

The scenario CI runs end-to-end:

1. build a 16-node loopback-TCP cluster (one ``AsyncioTransport``, one
   listening socket per node) and a same-seed simulator twin, publish
   the same corpus through both;
2. wrap every cluster handler with a small emulated wire delay, so
   wall-clock differences reflect round trips rather than Python
   dispatch overhead;
3. for query sizes m ∈ {1, 2, 3}, run superset search in PARALLEL and
   TOP_DOWN order on the cluster and in every order on the simulator;
4. assert (a) the cluster's result sets match the simulator's
   byte-for-byte, (b) PARALLEL finishes in ``r - |One| + 1`` rounds,
   and (c) its wall-clock is strictly below the sequential walk's.

Exits non-zero on any violation.  Runs in well under a minute.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import ServiceConfig  # noqa: E402
from repro.core.service import KeywordSearchService  # noqa: E402
from repro.core.search import TraversalOrder  # noqa: E402
from repro.net.cluster import LocalCluster  # noqa: E402

CONFIG = ServiceConfig(dimension=8, num_dht_nodes=16, seed=13)
QUERIES = {1: {"common"}, 2: {"common", "tag"}, 3: {"common", "tag", "genre"}}
WIRE_DELAY_S = 0.002


def corpus() -> list[tuple[str, set[str]]]:
    items = []
    for number in range(96):
        keywords = {"common", f"x{number % 7}", f"y{number % 5}"}
        if number % 2 == 0:
            keywords.add("tag")
        if number % 3 == 0:
            keywords.add("genre")
        items.append((f"obj-{number}", keywords))
    return items


def emulate_wire_delay(transport, delay_s: float) -> None:
    """One-way latency per delivered request, overlapping for requests
    in flight together (the sleep runs in the handler thread pool)."""
    for address in sorted(transport.addresses()):
        original = transport._handlers[address]

        def delayed(message, _inner=original):
            time.sleep(delay_s)
            return _inner(message)

        transport.register(address, delayed)


def timed_search(service, query, order):
    started = time.monotonic()
    result = service.superset_search(query, order=order, use_cache=False)
    return time.monotonic() - started, result


def main() -> int:
    simulator = KeywordSearchService.create(CONFIG)
    for object_id, keywords in corpus():
        simulator.publish(object_id, keywords)

    failures = 0
    with LocalCluster(CONFIG) as cluster:
        for object_id, keywords in corpus():
            cluster.service.publish(object_id, keywords)
        emulate_wire_delay(cluster.transport, WIRE_DELAY_S)

        for size, query in QUERIES.items():
            expected = {
                order: set(
                    simulator.superset_search(query, order=order, use_cache=False).object_ids
                )
                for order in TraversalOrder
            }
            if len(set(map(frozenset, expected.values()))) != 1:
                print(f"FAIL m={size}: simulator orders disagree")
                failures += 1
                continue

            # Warm the connection pool so timing compares traversals,
            # not TCP handshakes.
            timed_search(cluster.service, query, TraversalOrder.TOP_DOWN)
            timed_search(cluster.service, query, TraversalOrder.PARALLEL)
            seq_wall, sequential = timed_search(
                cluster.service, query, TraversalOrder.TOP_DOWN
            )
            par_wall, parallel = timed_search(
                cluster.service, query, TraversalOrder.PARALLEL
            )

            checks = {
                "parallel parity with simulator": set(parallel.object_ids)
                == expected[TraversalOrder.PARALLEL],
                "sequential parity with simulator": set(sequential.object_ids)
                == expected[TraversalOrder.TOP_DOWN],
                "round compression": parallel.rounds < sequential.rounds,
                "wall-clock strictly below sequential": par_wall < seq_wall,
            }
            for label, passed in checks.items():
                if not passed:
                    print(f"FAIL m={size}: {label}")
                    failures += 1
            print(
                f"m={size}: {len(parallel.objects)} objects, "
                f"rounds {sequential.rounds}->{parallel.rounds}, "
                f"wall {seq_wall * 1e3:.1f}ms->{par_wall * 1e3:.1f}ms "
                f"({seq_wall / par_wall:.2f}x), "
                f"{'OK' if all(checks.values()) else 'FAILED'}"
            )

    if failures:
        print(f"{failures} check(s) failed")
        return 1
    print("concurrency smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
