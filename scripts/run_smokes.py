#!/usr/bin/env python
"""One entrypoint for every end-to-end smoke in ``scripts/``.

Each smoke is a standalone script with its own pass/fail contract; this
runner subprocesses them (fresh interpreter each — the load smokes use
multiprocessing ``spawn`` workers and must not inherit a warm parent)
with a per-smoke wall-clock timeout, then prints a summary and exits
non-zero if any failed.

    python scripts/run_smokes.py              # all of them
    python scripts/run_smokes.py churn load   # a subset
    python scripts/run_smokes.py --list
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time
from pathlib import Path

SCRIPTS_DIR = Path(__file__).resolve().parent

#: name -> (script, timeout seconds).  Timeouts match what CI enforced
#: when each smoke was its own job, with headroom.
SMOKES: dict[str, tuple[str, int]] = {
    "concurrency": ("concurrency_smoke.py", 120),
    "crash-recovery": ("crash_recovery_smoke.py", 180),
    "load": ("load_smoke.py", 150),
    "churn": ("churn_smoke.py", 180),
    "cache-coherence": ("cache_coherence_smoke.py", 120),
    "prefix": ("prefix_smoke.py", 180),
}


def run_one(name: str) -> tuple[bool, float]:
    script, timeout = SMOKES[name]
    print(f"=== {name}: python scripts/{script} (timeout {timeout}s) ===", flush=True)
    start = time.monotonic()
    try:
        process = subprocess.run(
            [sys.executable, str(SCRIPTS_DIR / script)], timeout=timeout
        )
        ok = process.returncode == 0
    except subprocess.TimeoutExpired:
        print(f"{name}: TIMEOUT after {timeout}s", flush=True)
        ok = False
    return ok, time.monotonic() - start


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "smokes",
        nargs="*",
        metavar="smoke",
        help=f"which smokes to run: {', '.join(SMOKES)}, or all (default: all)",
    )
    parser.add_argument("--list", action="store_true", help="list smoke names and exit")
    arguments = parser.parse_args()
    if arguments.list:
        for name, (script, timeout) in SMOKES.items():
            print(f"{name:16} scripts/{script} (timeout {timeout}s)")
        return 0

    unknown = [n for n in arguments.smokes if n != "all" and n not in SMOKES]
    if unknown:
        parser.error(f"unknown smoke(s): {', '.join(unknown)} (try --list)")
    if not arguments.smokes or "all" in arguments.smokes:
        selected = list(SMOKES)
    else:
        selected = list(dict.fromkeys(arguments.smokes))
    outcomes = {name: run_one(name) for name in selected}

    print("=== summary ===")
    failed = 0
    for name, (ok, elapsed) in outcomes.items():
        print(f"{name:16} {'PASS' if ok else 'FAIL'} ({elapsed:.0f}s)")
        failed += 0 if ok else 1
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
