#!/usr/bin/env python
"""Prefix-search smoke: harvest workload on a 16-node loopback cluster.

The scenario CI runs end-to-end (docs/protocol.md §17):

1. build a 16-node loopback-TCP cluster with dynamic membership, a
   2-way replicated index, and the distributed keyword directory, then
   publish a synthetic corpus;
2. replay a harvest-style Zipf prefix stream (the discovered vocabulary
   grows mid-stream, as a crawler's would) through the unified client in
   prefix mode, checking every answer against the brute-force
   posting-list oracle — recall must be **exact**, not approximate;
3. crash one node (operator-declared, so repair runs immediately) and
   replay the same probes: the directory's replica failover + row
   repair must keep every prefix answer byte-identical to the oracle.

Exits non-zero on any violation.  Runs in well under two minutes.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import SearchOptions, ServiceConfig  # noqa: E402
from repro.core.service import KeywordSearchService  # noqa: E402
from repro.load.mix import HarvestPrefixMix  # noqa: E402
from repro.membership import MembershipPolicy  # noqa: E402
from repro.net.cluster import LocalCluster  # noqa: E402
from repro.prefix.trie import prefix_of  # noqa: E402
from repro.sim.resilience import RetryPolicy  # noqa: E402
from repro.workload.corpus import SyntheticCorpus  # noqa: E402

CONFIG = ServiceConfig(
    dimension=6,
    num_dht_nodes=16,
    seed=17,
    index_replicas=2,
    prefix_directory=True,
    resilience=RetryPolicy(max_attempts=2, base_delay=8.0, jitter=0.0),
)
POLICY = MembershipPolicy(gossip_interval=0.1, fanout=3, suspicion_threshold=3)
NUM_OBJECTS = 96
PROBES = 40
MAX_EXPANSIONS = 64  # >= vocabulary size: no probe can be truncated
OPTIONS = SearchOptions(prefix=True, max_expansions=MAX_EXPANSIONS)


def build_corpus() -> SyntheticCorpus:
    return SyntheticCorpus.generate(num_objects=NUM_OBJECTS, vocabulary_size=64, seed=17)


def probe_stream(corpus: SyntheticCorpus) -> list[str]:
    """Harvest shape: start with the 8 hottest keywords discovered,
    widen to the full vocabulary halfway through the stream."""
    mix = HarvestPrefixMix.from_corpus(corpus, discovered=8, min_length=2, seed=23)
    probes = [mix.next_prefix() for _ in range(PROBES // 2)]
    mix.discover(len(mix.vocabulary))
    probes += [mix.next_prefix() for _ in range(PROBES - len(probes))]
    return probes


def oracle_for(postings: dict, prefix: str) -> set:
    return {
        object_id
        for keyword, ids in postings.items()
        if keyword.startswith(prefix)
        for object_id in ids
    }


def check_stream(client, postings: dict, probes: list[str], stage: str) -> int:
    failures = 0
    for prefix in probes:
        expected = oracle_for(postings, prefix)
        returned = set(client.search(prefix, OPTIONS).results())
        if returned != expected:
            failures += 1
            missing, extra = expected - returned, returned - expected
            print(
                f"FAIL [{stage}] prefix {prefix!r}: "
                f"missing={sorted(missing)} extra={sorted(extra)}"
            )
    print(f"{stage}: {len(probes) - failures}/{len(probes)} probes exact")
    return failures


def index_safe_victims(service) -> list[int]:
    """Addresses whose loss the replicated *index* can fully repair."""
    victims = []
    for victim in service.dolr.addresses():
        safe, loaded = True, False
        for index in service.indexes:
            donors = [d for d in service.indexes if d is not index]
            for logical in index.mapping.logical_nodes_of(victim):
                rows = index.shard_at(victim).snapshot_records((index.namespace, logical))
                if not rows:
                    continue
                loaded = True
                if not donors or not any(
                    d.mapping.physical_owner(logical) != victim for d in donors
                ):
                    safe = False
        if safe and loaded:
            victims.append(victim)
    return victims


def directory_safe(service, victim: int) -> bool:
    """Every trie row hosted on ``victim`` has a replica row owned by a
    *different* address (so directory repair can re-seed all of them)."""
    directory = service.directory
    shard = service.dolr.node(victim).application("hindex")
    for key in list(shard.tables):
        if key[0] not in directory.namespaces:
            continue
        for row in shard.tables[key]:
            prefix = prefix_of(row)
            if not any(
                directory.owner_of(namespace, prefix) != victim
                for namespace in directory.namespaces
                if namespace != key[0]
            ):
                return False
    return True


def main() -> int:
    corpus = build_corpus()
    postings = {k: set(v) for k, v in corpus.inverted_index().items()}
    probes = probe_stream(corpus)

    # Stage 0: the same workload on the pure simulator must be exact.
    simulator = KeywordSearchService.create(CONFIG)
    for record in corpus.records:
        simulator.publish(record.object_id, record.keywords)
    failures = check_stream(simulator.client(), postings, probes, "simulator")

    with LocalCluster(CONFIG, membership=POLICY) as cluster:
        for record in corpus.records:
            cluster.service.publish(record.object_id, record.keywords)
        client = cluster.client()

        failures += check_stream(client, postings, probes, "tcp-16-nodes")

        victims = [
            v
            for v in index_safe_victims(cluster.service)
            if directory_safe(cluster.service, v)
        ]
        if not victims:
            print("FAIL: no fully-repairable victim to crash")
            return 1
        victim = victims[0]
        restored = cluster.declare_crashed(victim)
        print(f"crashed node {victim}; repair restored {restored} references")

        failures += check_stream(client, postings, probes, "post-crash")

    if failures:
        print(f"FAIL: {failures} probe(s) diverged from the oracle")
        return 1
    print("PASS: prefix recall exact on simulator, TCP cluster, and after a crash")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
