#!/usr/bin/env python3
"""File sharing: the workload the paper's introduction motivates.

A few hundred peers share a synthetic media library (PCHome-style
keyword statistics).  The example demonstrates:

* multi-replica publish/unpublish — the index entry appears with the
  first copy and disappears with the last (Section 3.3's Insert/Delete),
* browse-style cumulative search through a large matching set,
* ranking by specificity and the refinement hints (extra keywords) the
  scheme surfaces without any global knowledge,
* Lemma 3.3: refining a query shrinks the search space to a
  sub-subhypercube.

Run:  python examples/file_sharing.py
"""

from repro import KeywordSearchService, ServiceConfig
from repro.hypercube.subcube import SubHypercube
from repro.workload.corpus import SyntheticCorpus


def main() -> None:
    service = KeywordSearchService.create(
        ServiceConfig(dimension=10, num_dht_nodes=128, seed=7)
    )
    library = SyntheticCorpus.generate(num_objects=1_500, seed=7)

    # Every peer shares a slice of the library.
    peers = service.index.dolr.addresses()
    for position, record in enumerate(library):
        service.publish(
            record.object_id, record.keywords, holder=peers[position % len(peers)]
        )
    print(f"{len(library)} files shared by {len(peers)} peers")

    # Replicate one popular file on a second peer: no new index entry.
    star = library.records[0]
    before = service.messages_sent()
    service.index.insert(star.object_id, star.keywords, peers[1])
    print(f"replicating {star.object_id} cost "
          f"{service.messages_sent() - before} messages (reference only, "
          f"no re-indexing)\n")

    # Pick a popular keyword and browse matches page by page.
    frequencies = library.keyword_frequencies()
    top_keyword, top_count = frequencies.most_common(1)[0]
    print(f"browsing files tagged {top_keyword!r} ({top_count} matches):")
    session = service.cumulative_search({top_keyword})
    page = 1
    seen: set[str] = set()
    while not session.exhausted and page <= 3:
        batch = session.next_batch(5)
        ids = [found.object_id for found in batch.objects]
        assert not (set(ids) & seen), "cumulative pages must not repeat"
        seen.update(ids)
        print(f"  page {page}: {ids}")
        page += 1
    print(f"  served {session.total_served} so far; exhausted: {session.exhausted}\n")

    # Refinement: the scheme returns each match's extra keywords, which
    # make natural refinement suggestions.
    result = service.superset_search({top_keyword}, threshold=10)
    suggestions: dict[str, int] = {}
    for found in result.objects:
        for extra in found.extra_keywords(result.query):
            suggestions[extra] = suggestions.get(extra, 0) + 1
    best = sorted(suggestions, key=suggestions.get, reverse=True)[:3]
    print(f"refinement suggestions for {{{top_keyword}}}: {best}")

    refined = {top_keyword, best[0]}
    broad_root = service.index.mapper.node_for({top_keyword})
    narrow_root = service.index.mapper.node_for(refined)
    broad = SubHypercube(service.cube, broad_root)
    narrow = SubHypercube(service.cube, narrow_root)
    assert narrow.is_subcube_of(broad), "Lemma 3.3 violated"
    print(f"refined query search space: {narrow.size} nodes "
          f"(inside the original {broad.size}-node space — Lemma 3.3)")
    refined_result = service.superset_search(refined)
    print(f"refined results: {list(refined_result.object_ids)[:5]} "
          f"({len(refined_result.objects)} total, "
          f"{refined_result.logical_nodes_contacted} nodes contacted)\n")

    # Unpublish both replicas of the star file; it vanishes from search.
    service.unpublish(star.object_id, holder=peers[0])
    service.index.delete(star.object_id, star.keywords, peers[1])
    gone = service.pin_search(star.keywords)
    print(f"after deleting both replicas, pin search finds: "
          f"{[o for o in gone.object_ids if o == star.object_id] or 'nothing'}")


if __name__ == "__main__":
    main()
