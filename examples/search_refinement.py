#!/usr/bin/env python3
"""Search refinement and caching under a realistic query stream.

Replays a Zipf-skewed query log (top-10 queries ≈ 60% of traffic, the
paper's footnote-1 statistic) against the index twice — cold and with
per-node FIFO caches — and reports how the caches collapse the number
of nodes contacted, the effect Figure 9 measures.  Also shows the
specificity ranking a user-facing application would build on.

Run:  python examples/search_refinement.py
"""

from repro.core.sampling import SampledSearch, suggest_refinements
from repro.core.search import SuperSetSearch, TraversalOrder
from repro.experiments.harness import build_loaded_index
from repro.workload.corpus import SyntheticCorpus
from repro.workload.queries import QueryLogGenerator


def replay(searcher: SuperSetSearch, stream, use_cache: bool) -> tuple[float, float]:
    """Return (mean visits per query, cache hit rate)."""
    visits = 0
    hits = 0
    for query in stream:
        result = searcher.run(query.keywords, use_cache=use_cache)
        visits += len(result.visits)
        hits += result.cache_hit
    return visits / len(stream), hits / len(stream)


def main() -> None:
    corpus = SyntheticCorpus.generate(num_objects=8_000, seed=3)
    index = build_loaded_index(corpus, dimension=10, seed=3, cache_capacity=8)
    searcher = SuperSetSearch(index)

    generator = QueryLogGenerator(corpus, pool_size=60, seed=4)
    stream = generator.generate(1_500)
    print(f"replaying {len(stream)} queries "
          f"(top-10 cover {QueryLogGenerator.head_share_of(stream, 10):.0%} "
          f"of the stream)\n")

    cold_visits, _ = replay(searcher, stream, use_cache=False)
    print(f"without caches: {cold_visits:7.1f} nodes contacted per query "
          f"({cold_visits / index.cube.num_nodes:.1%} of the hypercube)")

    index.reset_caches()
    warm_visits, hit_rate = replay(searcher, stream, use_cache=True)
    print(f"with caches:    {warm_visits:7.1f} nodes contacted per query "
          f"({warm_visits / index.cube.num_nodes:.1%}), "
          f"hit rate {hit_rate:.0%}")
    print(f"cache speedup:  {cold_visits / warm_visits:.1f}x fewer contacts\n")

    # Specificity ranking: run one popular query both ways.
    query = generator.popular_sets(1, 1)[0]
    general_first = searcher.run(query, threshold=3, order=TraversalOrder.TOP_DOWN)
    specific_first = searcher.run(query, threshold=3, order=TraversalOrder.BOTTOM_UP)
    keyword = next(iter(query))
    print(f"query {{{keyword}}} — first three results by traversal:")
    for label, result in (("general", general_first), ("specific", specific_first)):
        described = [
            f"{found.object_id}(+{found.specificity(result.query)})"
            for found in result.objects[:3]
        ]
        print(f"  {label:>8}-first: {described}")

    # Category sampling (the paper's Section 1 sketch): a few objects
    # per extra-keyword category, feeding ranked refinement suggestions
    # — no global knowledge needed.
    sample = SampledSearch(index).run(
        query, per_category=2, max_categories=8, max_visits=48
    )
    print(f"\nsampled {len(sample.samples())} objects across "
          f"{sample.num_categories} categories in {sample.visits} node visits")
    print("top refinements (keyword, support, search-space reduction):")
    for suggestion in suggest_refinements(sample, index, limit=3):
        print(f"  +{suggestion.keyword:<12} support={suggestion.support} "
              f"reduction={suggestion.subcube_reduction:.0%}")


if __name__ == "__main__":
    main()
