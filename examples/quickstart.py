#!/usr/bin/env python3
"""Quickstart: publish objects into the P2P keyword-search layer and query them.

Builds the full stack from the paper's Figure 2 — a simulated physical
network, a Chord DHT overlay, and the hypercube keyword/attribute
search layer — then walks through the three service operations:
publish (Insert), pin search, and superset search.

Run:  python examples/quickstart.py
"""

from repro import KeywordSearchService, SearchOptions, ServiceConfig
from repro.core.config import DhtKind
from repro.core.search import TraversalOrder


def main() -> None:
    # A 64-peer Chord overlay carrying a 2**8-node logical hypercube.
    service = KeywordSearchService.create(
        ServiceConfig(dimension=8, num_dht_nodes=64, dht=DhtKind.CHORD, seed=42)
    )

    catalogue = {
        "take-five.mp3": {"mp3", "jazz", "saxophone"},
        "so-what.mp3": {"mp3", "jazz", "trumpet", "modal"},
        "moonlight.flac": {"flac", "classical", "piano"},
        "blue-in-green.mp3": {"mp3", "jazz", "piano", "modal"},
        "giant-steps.mp3": {"mp3", "jazz", "saxophone", "bebop"},
    }
    for object_id, keywords in catalogue.items():
        service.publish(object_id, keywords)
    print(f"published {service.published_count()} objects "
          f"onto {len(service.index.dolr.nodes)} peers\n")

    # Pin search: the exact keyword set resolves to one node, one message.
    pin = service.pin_search({"mp3", "jazz", "saxophone"})
    print("pin search {mp3, jazz, saxophone}:")
    print(f"  objects: {list(pin.results())}")
    print(f"  answered by logical node {pin.logical_node:#0{4}b} "
          f"(physical {pin.physical_node}) in {pin.dht_hops} DHT hops\n")

    # Superset search: everything describable by {mp3, jazz}, most
    # general first (fewest extra keywords — Lemma 3.2's ordering).
    result = service.superset_search({"mp3", "jazz"})
    print("superset search {mp3, jazz} (top-down = general first):")
    for found in result.objects:
        extra = sorted(found.extra_keywords(result.query))
        print(f"  {found.object_id:<22} +{len(extra)} extra keywords {extra}")
    print(f"  contacted {result.logical_nodes_contacted} of "
          f"{service.cube.num_nodes} hypercube nodes, "
          f"{result.messages} messages\n")

    # The same query bottom-up returns the most specific objects first.
    specific = service.superset_search({"mp3", "jazz"}, order=TraversalOrder.BOTTOM_UP)
    print("same query, bottom-up (specific first):")
    print(f"  first result: {specific.objects[0].object_id}\n")

    # Thresholded search stops as soon as enough objects are found; the
    # per-query knobs can also travel as one SearchOptions object.
    two = service.search({"mp3"}, SearchOptions(threshold=2))
    print(f"superset search {{mp3}} with threshold 2: {list(two.results())}")
    print(f"  visits: {len(two.visits)} (stopped early), complete: {two.complete}")


if __name__ == "__main__":
    main()
