#!/usr/bin/env python3
"""Service discovery: attribute search over a decomposed index.

The paper names resource/service discovery as a target application and
notes (Section 3.4) that the keyword space can be decomposed into
disjoint attribute groups, each indexed by its own smaller hypercube.
Here, grid services are described by attribute=value keywords from
three groups — resource type, region, capability — and discovered by
partial attribute sets.

Run:  python examples/service_discovery.py
"""

import random

from repro.core.decomposed import DecomposedIndex
from repro.dht.chord import ChordNetwork

ATTRIBUTE_GROUPS = {
    0: [f"type={t}" for t in ("compute", "storage", "gpu", "database", "cache")],
    1: [f"region={r}" for r in ("us-east", "us-west", "eu", "apac", "sa")],
    2: [f"cap={c}" for c in ("ssd", "ecc", "infiniband", "encrypted", "spot",
                             "preemptible", "arm", "x86")],
}


def classify(keyword: str) -> int:
    """Route each attribute to its group's hypercube."""
    prefix = keyword.split("=", 1)[0]
    return {"type": 0, "region": 1, "cap": 2}[prefix]


def main() -> None:
    rng = random.Random(11)
    dolr = ChordNetwork.build(bits=32, num_nodes=48, seed=11)
    directory = DecomposedIndex(
        dolr,
        groups=3,
        dimension_per_group=5,
        classifier=classify,
    )

    # Register 300 service endpoints with 3-5 attributes each.
    services = []
    for index in range(300):
        attributes = {
            rng.choice(ATTRIBUTE_GROUPS[0]),
            rng.choice(ATTRIBUTE_GROUPS[1]),
            *rng.sample(ATTRIBUTE_GROUPS[2], rng.randint(1, 3)),
        }
        service_id = f"svc-{index:04d}"
        holder = dolr.addresses()[index % len(dolr.addresses())]
        directory.insert(service_id, attributes, holder)
        services.append((service_id, frozenset(attributes)))
    print(f"registered {len(services)} services across {len(dolr.nodes)} peers")
    print(f"storage multiplier (entries per service): "
          f"{directory.storage_multiplier():.2f}\n")

    # Discover by partial attribute sets of increasing selectivity.
    for query in (
        {"type=gpu"},
        {"type=gpu", "region=eu"},
        {"type=gpu", "region=eu", "cap=infiniband"},
    ):
        result = directory.superset_search(query, threshold=5)
        expected = [sid for sid, attrs in services if frozenset(query) <= attrs]
        print(f"discover {sorted(query)}:")
        print(f"  found {list(result.object_ids)}")
        print(f"  searched group {result.group} "
              f"(projection {sorted(result.projection)}), "
              f"{len(result.inner.visits)} nodes visited, "
              f"verification precision {result.precision:.2f}")
        assert set(result.object_ids) <= set(expected), "false positives!"
        print(f"  ground truth size: {len(expected)}\n")

    # Deregistration removes the service from every group.
    victim_id, victim_attrs = services[0]
    removed = directory.delete(victim_id, dolr.addresses()[0])
    print(f"deregistered {victim_id} from {removed} attribute groups")
    check = directory.superset_search(victim_attrs)
    assert victim_id not in check.object_ids
    print("it is no longer discoverable")


if __name__ == "__main__":
    main()
