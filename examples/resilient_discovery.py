#!/usr/bin/env python3
"""Resilient search: replication and churn maintenance in one walkthrough.

Section 3.4 sketches two robustness mechanisms this library implements:

* a *secondary hypercube* replicating every index entry onto an
  independently placed node, so searches survive node failures, and
* data migration so the index follows DHT ownership through joins and
  graceful departures (rebalance / evacuate).

On top of those, the messaging layer itself can retry, back off and
circuit-break (``repro.sim.resilience``), letting even a strict search
degrade gracefully instead of raising.  This example injects failures
and churn and shows recall staying high.

Run:  python examples/resilient_discovery.py
"""

import random

from repro import BreakerPolicy, RetryPolicy
from repro.core.index import HypercubeIndex
from repro.core.replication import ReplicatedHypercubeIndex
from repro.core.search import SuperSetSearch
from repro.dht.chord import ChordNetwork
from repro.hypercube.hypercube import Hypercube
from repro.workload.corpus import SyntheticCorpus


def recall(found_ids, expected_ids) -> float:
    expected = set(expected_ids)
    return len(set(found_ids) & expected) / len(expected) if expected else 1.0


def main() -> None:
    rng = random.Random(21)
    ring = ChordNetwork.build(bits=16, num_nodes=96, seed=21)
    corpus = SyntheticCorpus.generate(num_objects=2_000, seed=21)

    # Unreplicated baseline sharing the same overlay.
    plain = SuperSetSearch(
        HypercubeIndex(Hypercube(9), ring, namespace="plain"),
        skip_unreachable=True,
    )
    plain.index.bulk_load((r.object_id, r.keywords) for r in corpus)

    replicated = ReplicatedHypercubeIndex(Hypercube(9), ring, replicas=2)
    replicated.bulk_load((r.object_id, r.keywords) for r in corpus)
    print(f"indexed {len(corpus)} objects twice: plain and 2x-replicated\n")

    # Pick a popular keyword and its ground truth.
    keyword, count = corpus.keyword_frequencies().most_common(1)[0]
    expected = corpus.matching(frozenset({keyword}))
    print(f"query {{{keyword}}} has {count} matching objects")

    # Fail 25% of the peers.
    addresses = ring.addresses()
    victims = rng.sample(addresses, len(addresses) // 4)
    for victim in victims:
        ring.network.fail(victim)
    origin = next(a for a in addresses if ring.network.is_alive(a))
    print(f"failed {len(victims)} of {len(addresses)} peers\n")

    bare = plain.run({keyword}, origin=origin)
    rep = replicated.superset_search({keyword}, origin=origin)
    print(f"plain index recall:      {recall(bare.object_ids, expected):.0%}")
    print(f"replicated index recall: {recall(rep.object_ids, expected):.0%}\n")

    # The messaging layer's own defences: give every DOLR RPC a retry
    # policy and a per-destination circuit breaker.  A *strict* searcher
    # (no skip_unreachable) raises on the first dead peer over a plain
    # channel; on the resilient channel it retries, fails fast through
    # open breakers, degrades via surrogate routing, and reports what
    # it had to route around.
    ring.configure_resilience(
        RetryPolicy.default(), breaker=BreakerPolicy(failure_threshold=3), rng=21
    )
    strict = SuperSetSearch(plain.index)
    survived = strict.run({keyword}, origin=origin)
    surrogates = sum(v.status == "surrogate" for v in survived.visits)
    print(f"strict search, resilient channel: "
          f"recall {recall(survived.object_ids, expected):.0%}, "
          f"{len(survived.degraded_visits)} degraded visits "
          f"({surrogates} served by surrogates)")
    metrics = ring.network.metrics
    print(f"channel counters: retries={metrics.counter('rpc.retries')}, "
          f"breakers opened={metrics.counter('breaker.open')}, "
          f"fast-failed={metrics.counter('breaker.rejected')}\n")
    ring.configure_resilience(None)

    for victim in victims:
        ring.network.recover(victim)

    # Churn: five newcomers join, one loaded peer leaves gracefully.
    bootstrap = addresses[0]
    for address in rng.sample(range(1 << 16), 5):
        if address not in ring.nodes:
            ring.join(address, bootstrap)
    ring.stabilize_all(rounds=2)
    moved = plain.index.rebalance()
    print(f"after 5 joins, rebalance migrated {moved} index references")

    leaver = max(
        ring.addresses(),
        key=lambda a: plain.index.shard_at(a).load(namespace="plain"),
    )
    handed_off = plain.index.evacuate(leaver)
    ring.leave(leaver)
    ring.stabilize_all(rounds=2)
    print(f"graceful departure of the busiest peer handed off {handed_off} references")

    after = plain.run({keyword})
    print(f"recall after churn:      {recall(after.object_ids, expected):.0%}")


if __name__ == "__main__":
    main()
